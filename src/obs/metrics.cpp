#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "util/assert.hpp"

namespace ebv::obs {

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<std::uint64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
    EBV_EXPECTS(!bounds_.empty());
    EBV_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(std::uint64_t value) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);

    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
}

std::uint64_t Histogram::min() const {
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

double Histogram::percentile(double p) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the target observation, 1-based.
    const double target =
        std::max(1.0, (p / 100.0) * static_cast<double>(n));

    std::uint64_t before = 0;
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
        const std::uint64_t in_bucket = bucket_count(b);
        if (in_bucket == 0) continue;
        if (static_cast<double>(before + in_bucket) >= target) {
            const double lower =
                b == 0 ? 0.0 : static_cast<double>(bounds_[b - 1]);
            const double upper = b < bounds_.size()
                                     ? static_cast<double>(bounds_[b])
                                     : static_cast<double>(max());
            const double fraction =
                (target - static_cast<double>(before)) /
                static_cast<double>(in_bucket);
            const double estimate = lower + (upper - lower) * fraction;
            return std::clamp(estimate, static_cast<double>(min()),
                              static_cast<double>(max()));
        }
        before += in_bucket;
    }
    return static_cast<double>(max());
}

void Histogram::reset() {
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::exponential_bounds(std::uint64_t first,
                                                         double factor,
                                                         std::size_t count) {
    EBV_EXPECTS(first > 0 && factor > 1.0 && count > 0);
    std::vector<std::uint64_t> bounds;
    bounds.reserve(count);
    double bound = static_cast<double>(first);
    for (std::size_t i = 0; i < count; ++i) {
        const auto rounded = static_cast<std::uint64_t>(bound);
        if (!bounds.empty() && rounded <= bounds.back()) {
            bounds.push_back(bounds.back() + 1);
        } else {
            bounds.push_back(rounded);
        }
        bound *= factor;
    }
    return bounds;
}

const std::vector<std::uint64_t>& Histogram::default_time_bounds() {
    static const std::vector<std::uint64_t> bounds =
        exponential_bounds(256, 2.0, 33);  // 256 ns .. ~1100 s
    return bounds;
}

// ---- Registry ---------------------------------------------------------------

Registry& Registry::global() {
    static Registry registry;
    return registry;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name),
                               std::make_unique<Counter>(std::string(name)))
                 .first;
    }
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string(name),
                             std::make_unique<Gauge>(std::string(name)))
                 .first;
    }
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
    return histogram(name, Histogram::default_time_bounds());
}

Histogram& Registry::histogram(std::string_view name,
                               const std::vector<std::uint64_t>& bounds) {
    std::lock_guard lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(std::string(name), bounds))
                 .first;
    }
    return *it->second;
}

void Registry::reset() {
    std::lock_guard lock(mutex_);
    for (auto& [_, c] : counters_) c->reset();
    for (auto& [_, g] : gauges_) g->reset();
    for (auto& [_, h] : histograms_) h->reset();
}

namespace {

std::string sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
        if (c == '.' || c == '-' || c == '/') c = '_';
    }
    return out;
}

void append_format(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append_format(std::string& out, const char* fmt, ...) {
    char buffer[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    if (n > 0) out.append(buffer, std::min<std::size_t>(n, sizeof buffer - 1));
}

void append_histogram_json(std::string& out, const Histogram& h) {
    append_format(out,
                  "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,"
                  "\"buckets\":[",
                  h.count(), h.sum(), h.min(), h.max(), h.percentile(50),
                  h.percentile(95), h.percentile(99));
    bool first = true;
    for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
        const std::uint64_t c = h.bucket_count(b);
        if (c == 0) continue;  // sparse output: zero buckets add no information
        if (!first) out += ',';
        first = false;
        if (b < h.bounds().size()) {
            append_format(out, "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
                          h.bounds()[b], c);
        } else {
            append_format(out, "{\"le\":null,\"count\":%" PRIu64 "}", c);
        }
    }
    out += "]}";
}

}  // namespace

std::string Registry::to_prometheus() const {
    std::lock_guard lock(mutex_);
    std::string out;
    for (const auto& [name, c] : counters_) {
        const std::string id = sanitize(name);
        append_format(out, "# TYPE %s counter\n%s %" PRIu64 "\n", id.c_str(),
                      id.c_str(), c->value());
    }
    for (const auto& [name, g] : gauges_) {
        const std::string id = sanitize(name);
        append_format(out, "# TYPE %s gauge\n%s %lld\n", id.c_str(), id.c_str(),
                      static_cast<long long>(g->value()));
    }
    for (const auto& [name, h] : histograms_) {
        const std::string id = sanitize(name);
        append_format(out, "# TYPE %s histogram\n", id.c_str());
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h->bounds().size(); ++b) {
            cumulative += h->bucket_count(b);
            append_format(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                          id.c_str(), h->bounds()[b], cumulative);
        }
        cumulative += h->bucket_count(h->bounds().size());
        append_format(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", id.c_str(),
                      cumulative);
        append_format(out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                      id.c_str(), h->sum(), id.c_str(), h->count());
    }
    return out;
}

std::string Registry::to_json() const {
    std::lock_guard lock(mutex_);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) out += ',';
        first = false;
        append_format(out, "\"%s\":%" PRIu64, name.c_str(), c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) out += ',';
        first = false;
        append_format(out, "\"%s\":%lld", name.c_str(),
                      static_cast<long long>(g->value()));
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
        if (!first) out += ',';
        first = false;
        append_format(out, "\"%s\":", name.c_str());
        append_histogram_json(out, *h);
    }
    out += "}}";
    return out;
}

std::string Registry::to_jsonl() const {
    std::lock_guard lock(mutex_);
    std::string out;
    for (const auto& [name, c] : counters_) {
        append_format(out,
                      "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%" PRIu64
                      "}\n",
                      name.c_str(), c->value());
    }
    for (const auto& [name, g] : gauges_) {
        append_format(out, "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%lld}\n",
                      name.c_str(), static_cast<long long>(g->value()));
    }
    for (const auto& [name, h] : histograms_) {
        append_format(out, "{\"type\":\"histogram\",\"name\":\"%s\",\"value\":",
                      name.c_str());
        append_histogram_json(out, *h);
        out += "}\n";
    }
    return out;
}

}  // namespace ebv::obs
