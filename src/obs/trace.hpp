// Causal span tracer for the validation pipeline. A span is a named
// interval carrying both wall-clock time and modelled (SimTimeLedger)
// device time — the same split util::TimeCost uses — so a trace of a block
// shows where real CPU went *and* where a real HDD/SSD would have added
// latency.
//
// Spans are *hierarchical*: each carries a trace id (one causal tree), a
// process-unique span id, and its parent's span id. The current span is a
// thread-local context that ScopedSpan pushes/pops, and
// util::ThreadPool propagates it across parallel_for jobs (see the task
// context hooks installed by this translation unit), so worker-side spans
// recorded inside a pool body nest under whatever span the submitting
// thread had open — a block's span, which itself nests under its IBD
// window's span. docs/OBSERVABILITY.md walks a full window timeline.
//
// Spans land in a bounded in-memory ring (oldest dropped first, drop count
// kept and exported as ebv.obs.* metrics so truncation is detectable),
// guarded by a mutex. Default recording happens at block/stage
// granularity; per-input worker spans are additionally gated behind the
// `detail` flag (set by EBV_TRACE_JSON in the bench harness) so the
// always-on path stays cheap. Export is JSONL here, or Chrome
// trace-event / folded flamegraph formats via obs/export.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.hpp"

namespace ebv::obs {

enum class SpanKind : std::uint8_t {
    kSpan = 0,     ///< a timed interval
    kCounter = 1,  ///< an instantaneous counter sample (value at start_ns)
};

struct Span {
    std::string name;
    /// Stable category tag for trace viewers ("ibd", "block", "ev", "sv",
    /// "commit", "pool", ...). Must point at static-storage (literal) data.
    const char* category = "";
    std::uint64_t trace_id = 0;   ///< causal tree this span belongs to
    std::uint64_t span_id = 0;    ///< process-unique, never 0 for spans
    std::uint64_t parent_id = 0;  ///< enclosing span, 0 = root
    util::Nanoseconds start_ns = 0;  ///< since process start (steady clock)
    util::Nanoseconds wall_ns = 0;
    util::Nanoseconds sim_ns = 0;  ///< modelled device time inside the span
    std::uint64_t thread_id = 0;
    std::int64_t value = 0;  ///< kCounter sample; spans may carry an arg
                             ///< (block height, window base) here too
    SpanKind kind = SpanKind::kSpan;
};

/// The thread-local causal position: the trace being built and the span
/// new work should parent under.
struct TraceContext {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
};

/// Current thread's context (zeros outside any span).
[[nodiscard]] TraceContext current_context();
/// Install `ctx` and return the previous context (cross-thread handoff:
/// util::ThreadPool swaps the submitter's context in around worker chunks).
TraceContext swap_context(TraceContext ctx);
/// Process-unique id (never 0), usable as a span id or a fresh trace id.
[[nodiscard]] std::uint64_t next_span_id();

class Tracer {
public:
    static Tracer& global();

    void set_enabled(bool enabled) {
        enabled_.store(enabled, std::memory_order_relaxed);
        publish_state();
    }
    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Per-input / per-worker spans are recorded only when detail is on —
    /// block- and window-granularity spans ignore this flag. Off by
    /// default; the bench harness turns it on with EBV_TRACE_JSON.
    void set_detail(bool detail) { detail_.store(detail, std::memory_order_relaxed); }
    [[nodiscard]] bool detail() const {
        return enabled() && detail_.load(std::memory_order_relaxed);
    }

    /// Ring capacity in spans (default 8192). Shrinking drops oldest spans.
    void set_capacity(std::size_t spans);

    void record(Span span);
    /// Record an already-measured interval ending now (used to publish the
    /// per-stage TimeCost aggregates a validator accumulates). Parented
    /// under the calling thread's current context.
    void record(std::string_view name, util::TimeCost cost);
    /// Record an instantaneous counter sample (Chrome "C" event): the value
    /// of `name`'s dedicated track at this moment.
    void record_counter(std::string_view name, std::int64_t value);

    [[nodiscard]] std::vector<Span> snapshot() const;
    [[nodiscard]] std::uint64_t recorded() const;  ///< total, incl. dropped
    [[nodiscard]] std::uint64_t dropped() const;
    void clear();

    /// One JSON object per span per line.
    [[nodiscard]] std::string to_jsonl() const;

    /// Nanoseconds since the process-wide trace epoch.
    static util::Nanoseconds now_ns();

private:
    void publish_state();

    mutable std::mutex mutex_;
    std::deque<Span> spans_;
    std::size_t capacity_ = 8192;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::atomic<bool> enabled_{true};
    std::atomic<bool> detail_{false};
};

/// RAII span: measures wall time from construction to destruction; when a
/// ledger is supplied the modelled-time delta over the same interval is
/// captured too. Pushes itself as the thread's current context, so spans
/// (and pool jobs) opened inside nest under it. When the tracer is
/// disabled at construction the whole object is inert: no id allocation,
/// no context push, no clock reads (see BM_TraceDisabled).
class ScopedSpan {
public:
    explicit ScopedSpan(std::string_view name, const char* category = "",
                        const util::SimTimeLedger* ledger = nullptr,
                        Tracer& tracer = Tracer::global());
    /// Back-compat convenience: category defaults to "".
    ScopedSpan(std::string_view name, const util::SimTimeLedger* ledger)
        : ScopedSpan(name, "", ledger) {}
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// This span's id (0 when the tracer was disabled at construction) —
    /// lets callers parent out-of-band spans under it explicitly.
    [[nodiscard]] std::uint64_t span_id() const { return span_id_; }
    /// Attach an argument (block height, window base) exported with the span.
    void set_value(std::int64_t value) { value_ = value; }

private:
    Tracer& tracer_;
    std::string_view name_;
    const char* category_;
    const util::SimTimeLedger* ledger_;
    TraceContext prev_{};
    std::uint64_t span_id_ = 0;
    std::uint64_t trace_id_ = 0;
    util::Nanoseconds start_ = 0;
    util::Nanoseconds sim_start_ = 0;
    std::int64_t value_ = 0;
    bool active_ = false;
};

}  // namespace ebv::obs
