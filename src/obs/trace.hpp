// Span tracer for the validation pipeline. A span is a named interval
// carrying both wall-clock time and modelled (SimTimeLedger) device time —
// the same split util::TimeCost uses — so a trace of a block shows where
// real CPU went *and* where a real HDD/SSD would have added latency.
//
// Spans land in a bounded in-memory ring (oldest dropped first, drop count
// kept), guarded by a mutex: recording happens at block/stage granularity,
// not per input, so contention is negligible. Export is JSONL, one span per
// line, ordered oldest to newest.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include <mutex>

#include "util/stopwatch.hpp"

namespace ebv::obs {

struct Span {
    std::string name;
    util::Nanoseconds start_ns = 0;  ///< since process start (steady clock)
    util::Nanoseconds wall_ns = 0;
    util::Nanoseconds sim_ns = 0;    ///< modelled device time inside the span
    std::uint64_t thread_id = 0;
};

class Tracer {
public:
    static Tracer& global();

    void set_enabled(bool enabled) { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const { return enabled_; }
    /// Ring capacity in spans (default 8192). Shrinking drops oldest spans.
    void set_capacity(std::size_t spans);

    void record(Span span);
    /// Record an already-measured interval ending now (used to publish the
    /// per-stage TimeCost aggregates a validator accumulates).
    void record(std::string_view name, util::TimeCost cost);

    [[nodiscard]] std::vector<Span> snapshot() const;
    [[nodiscard]] std::uint64_t recorded() const;  ///< total, incl. dropped
    [[nodiscard]] std::uint64_t dropped() const;
    void clear();

    /// One JSON object per span per line.
    [[nodiscard]] std::string to_jsonl() const;

    /// Nanoseconds since the process-wide trace epoch.
    static util::Nanoseconds now_ns();

private:
    mutable std::mutex mutex_;
    std::deque<Span> spans_;
    std::size_t capacity_ = 8192;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    bool enabled_ = true;
};

/// RAII span: measures wall time from construction to destruction; when a
/// ledger is supplied the modelled-time delta over the same interval is
/// captured too.
class ScopedSpan {
public:
    explicit ScopedSpan(std::string_view name,
                        const util::SimTimeLedger* ledger = nullptr,
                        Tracer& tracer = Tracer::global());
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    Tracer& tracer_;
    std::string name_;
    const util::SimTimeLedger* ledger_;
    util::Nanoseconds start_;
    util::Nanoseconds sim_start_ = 0;
};

}  // namespace ebv::obs
