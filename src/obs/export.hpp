// Trace exporters: turn a Tracer snapshot into files a human can actually
// look at.
//
//  * Chrome trace-event JSON ("X" complete events + "C" counter events +
//    thread-name metadata) — loads in Perfetto (ui.perfetto.dev) and
//    chrome://tracing and renders the causal window → block → worker
//    timeline on per-thread tracks.
//  * Folded stacks ("a;b;c weight") — input for flamegraph.pl or
//    speedscope; weight is the span's *self* wall time in nanoseconds
//    (children subtracted, clamped at zero) so the flame widths sum
//    correctly along any root-to-leaf path.
//
// The bench harness wires these to the EBV_TRACE_JSON / EBV_TRACE_FOLDED
// env knobs; see docs/OBSERVABILITY.md for a walkthrough of reading the
// output.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ebv::obs {

/// Chrome trace-event JSON for `spans`. Thread ids are compressed to small
/// sequential tids (in order of first appearance) because the raw hashed
/// ids exceed the integer range JSON doubles can represent exactly.
[[nodiscard]] std::string to_chrome_trace(const std::vector<Span>& spans);

/// Folded flamegraph stacks for `spans`; counter samples are skipped and a
/// span whose parent fell out of the ring becomes a root.
[[nodiscard]] std::string to_folded_stacks(const std::vector<Span>& spans);

/// Write `tracer`'s current snapshot as Chrome trace JSON to `path`.
/// Returns false (and writes nothing) if the file cannot be opened.
bool write_chrome_trace(const std::string& path, const Tracer& tracer = Tracer::global());

/// Write `tracer`'s current snapshot as folded stacks to `path`.
bool write_folded_stacks(const std::string& path, const Tracer& tracer = Tracer::global());

}  // namespace ebv::obs
