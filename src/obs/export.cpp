#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace ebv::obs {

namespace {

/// Minimal JSON string escape (span names are dotted identifiers, but the
/// exporter must not be able to emit malformed output regardless).
std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Raw thread ids are std::hash values — too wide for the exact-integer
/// range of a JSON double — so compress them to small tids in order of
/// first appearance.
class TidMap {
public:
    int tid(std::uint64_t thread_id) {
        const auto [it, inserted] = map_.emplace(thread_id, next_);
        if (inserted) ++next_;
        return it->second;
    }
    [[nodiscard]] int count() const { return next_; }

private:
    std::unordered_map<std::uint64_t, int> map_;
    int next_ = 0;
};

void append_micros(std::string& out, util::Nanoseconds ns) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%" PRId64 ".%03d", ns / 1000,
                  static_cast<int>(ns % 1000 < 0 ? -(ns % 1000) : ns % 1000));
    out += buf;
}

bool write_file(const std::string& path, const std::string& contents) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
    const bool ok = written == contents.size() && std::fclose(f) == 0;
    if (!ok && written != contents.size()) std::fclose(f);
    return ok;
}

}  // namespace

std::string to_chrome_trace(const std::vector<Span>& spans) {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    TidMap tids;
    char buf[256];
    bool first = true;
    for (const Span& span : spans) {
        const int tid = tids.tid(span.thread_id);
        if (!first) out += ',';
        first = false;
        if (span.kind == SpanKind::kCounter) {
            // Counter sample: its own track, value plotted over time.
            out += "{\"name\":\"" + json_escape(span.name) +
                   "\",\"ph\":\"C\",\"pid\":1,\"tid\":";
            std::snprintf(buf, sizeof buf, "%d,\"ts\":", tid);
            out += buf;
            append_micros(out, span.start_ns);
            std::snprintf(buf, sizeof buf, ",\"args\":{\"value\":%" PRId64 "}}",
                          span.value);
            out += buf;
            continue;
        }
        // Complete event: one slice on this thread's track.
        out += "{\"name\":\"" + json_escape(span.name) + "\",\"cat\":\"" +
               json_escape(span.category[0] != '\0' ? span.category : "ebv") +
               "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
        std::snprintf(buf, sizeof buf, "%d,\"ts\":", tid);
        out += buf;
        append_micros(out, span.start_ns);
        out += ",\"dur\":";
        append_micros(out, span.wall_ns);
        std::snprintf(buf, sizeof buf,
                      ",\"args\":{\"trace\":%" PRIu64 ",\"span\":%" PRIu64
                      ",\"parent\":%" PRIu64 ",\"sim_ns\":%" PRId64
                      ",\"value\":%" PRId64 "}}",
                      span.trace_id, span.span_id, span.parent_id, span.sim_ns,
                      span.value);
        out += buf;
    }
    // Name the compressed threads so Perfetto's track labels are stable.
    for (int tid = 0; tid < tids.count(); ++tid) {
        if (!first) out += ',';
        first = false;
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%d,\"args\":{\"name\":\"ebv-thread-%d\"}}",
                      tid, tid);
        out += buf;
    }
    out += "]}";
    return out;
}

std::string to_folded_stacks(const std::vector<Span>& spans) {
    // Self time per span: wall minus the wall of direct children, clamped at
    // zero (clock jitter can make children sum past the parent).
    std::unordered_map<std::uint64_t, const Span*> by_id;
    std::unordered_map<std::uint64_t, util::Nanoseconds> child_wall;
    by_id.reserve(spans.size());
    for (const Span& span : spans) {
        if (span.kind != SpanKind::kSpan || span.span_id == 0) continue;
        by_id.emplace(span.span_id, &span);
    }
    for (const Span& span : spans) {
        if (span.kind != SpanKind::kSpan || span.parent_id == 0) continue;
        if (by_id.count(span.parent_id) != 0) child_wall[span.parent_id] += span.wall_ns;
    }
    // std::map: deterministic output order for tests and diffs.
    std::map<std::string, util::Nanoseconds> folded;
    for (const Span& span : spans) {
        if (span.kind != SpanKind::kSpan || span.span_id == 0) continue;
        util::Nanoseconds self = span.wall_ns;
        const auto child = child_wall.find(span.span_id);
        if (child != child_wall.end()) self -= child->second;
        if (self < 0) self = 0;
        // Build the root→leaf path; a parent that fell out of the ring (or a
        // cycle from id reuse, which next_span_id() precludes but we guard
        // anyway) truncates the stack there.
        std::vector<const Span*> path{&span};
        std::uint64_t parent = span.parent_id;
        while (parent != 0 && path.size() < 64) {
            const auto it = by_id.find(parent);
            if (it == by_id.end()) break;
            path.push_back(it->second);
            parent = it->second->parent_id;
        }
        std::string stack;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
            if (!stack.empty()) stack += ';';
            stack += (*it)->name;
        }
        folded[stack] += self;
    }
    std::string out;
    char buf[48];
    for (const auto& [stack, ns] : folded) {
        out += stack;
        std::snprintf(buf, sizeof buf, " %" PRId64 "\n", ns);
        out += buf;
    }
    return out;
}

bool write_chrome_trace(const std::string& path, const Tracer& tracer) {
    return write_file(path, to_chrome_trace(tracer.snapshot()));
}

bool write_folded_stacks(const std::string& path, const Tracer& tracer) {
    return write_file(path, to_folded_stacks(tracer.snapshot()));
}

}  // namespace ebv::obs
