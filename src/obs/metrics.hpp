// Process-wide metrics registry (`ebv::obs`): monotonic counters, gauges,
// and fixed-bucket histograms with percentile extraction. Recording is
// lock-free (relaxed atomics) so the parallel-SV thread pool and every
// storage instance can publish without contention; only instrument
// *creation* and snapshot export take the registry mutex.
//
// Usage pattern on hot paths: resolve the instrument once (it is stable for
// the life of the process) and keep the reference:
//
//   static obs::Counter& hits =
//       obs::Registry::global().counter("storage.page_cache.hits");
//   hits.inc();
//
// `Registry::reset()` zeroes every instrument in place (references stay
// valid), so benches and tests can measure deltas from a clean slate.
// Snapshots export as Prometheus text, a single JSON object, or JSONL
// (one metric per line). See docs/OBSERVABILITY.md for the name catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ebv::obs {

/// Monotonically increasing event count.
class Counter {
public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(std::uint64_t delta = 1) {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const std::string& name() const { return name_; }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::string name_;
    std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, resident bytes, ...).
class Gauge {
public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
    void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    [[nodiscard]] std::int64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const std::string& name() const { return name_; }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::string name_;
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket `i` counts observations with
/// `value <= bounds[i]` (and above the previous bound); one extra overflow
/// bucket catches everything beyond the last bound. Percentiles are
/// estimated by linear interpolation inside the containing bucket, clamped
/// to the observed [min, max].
class Histogram {
public:
    Histogram(std::string name, std::vector<std::uint64_t> bounds);

    void observe(std::uint64_t value);

    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t sum() const {
        return sum_.load(std::memory_order_relaxed);
    }
    /// 0 when empty.
    [[nodiscard]] std::uint64_t min() const;
    [[nodiscard]] std::uint64_t max() const {
        return max_.load(std::memory_order_relaxed);
    }
    /// p in [0, 100]; 0 when empty.
    [[nodiscard]] double percentile(double p) const;

    [[nodiscard]] const std::vector<std::uint64_t>& bounds() const { return bounds_; }
    /// bounds().size() + 1 buckets; the last is the overflow bucket.
    [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const {
        return counts_[bucket].load(std::memory_order_relaxed);
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    void reset();

    /// `count` bounds starting at `first`, each `factor` times the previous.
    static std::vector<std::uint64_t> exponential_bounds(std::uint64_t first,
                                                         double factor,
                                                         std::size_t count);
    /// Default latency buckets: 256 ns doubling up to ~17 min (33 bounds).
    static const std::vector<std::uint64_t>& default_time_bounds();

private:
    std::string name_;
    std::vector<std::uint64_t> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
};

class Registry {
public:
    /// The process-wide registry every subsystem publishes into.
    static Registry& global();

    /// Find-or-create by name. The returned reference is stable for the
    /// registry's lifetime. Requesting an existing name with a different
    /// instrument kind is a programming error (asserted).
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);  ///< default time bounds
    Histogram& histogram(std::string_view name,
                         const std::vector<std::uint64_t>& bounds);

    /// Zero every instrument in place; registrations (and references)
    /// survive. Benches call this to measure a phase in isolation.
    void reset();

    /// Prometheus text exposition (names are sanitized: '.' -> '_').
    [[nodiscard]] std::string to_prometheus() const;
    /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
    [[nodiscard]] std::string to_json() const;
    /// One JSON object per metric per line (JSONL snapshot).
    [[nodiscard]] std::string to_jsonl() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ebv::obs
