#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace ebv::obs {

namespace {

std::uint64_t this_thread_id() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::chrono::steady_clock::time_point trace_epoch() {
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

}  // namespace

Tracer& Tracer::global() {
    static Tracer tracer;
    (void)trace_epoch();  // pin the epoch no later than first use
    return tracer;
}

util::Nanoseconds Tracer::now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - trace_epoch())
        .count();
}

void Tracer::set_capacity(std::size_t spans) {
    std::lock_guard lock(mutex_);
    capacity_ = spans;
    while (spans_.size() > capacity_) {
        spans_.pop_front();
        ++dropped_;
    }
}

void Tracer::record(Span span) {
    if (!enabled_) return;
    if (span.thread_id == 0) span.thread_id = this_thread_id();
    std::lock_guard lock(mutex_);
    ++recorded_;
    spans_.push_back(std::move(span));
    while (spans_.size() > capacity_) {
        spans_.pop_front();
        ++dropped_;
    }
}

void Tracer::record(std::string_view name, util::TimeCost cost) {
    if (!enabled_) return;
    Span span;
    span.name = std::string(name);
    span.wall_ns = cost.wall_ns;
    span.sim_ns = cost.simulated_ns;
    span.start_ns = now_ns() - cost.wall_ns;
    record(std::move(span));
}

std::vector<Span> Tracer::snapshot() const {
    std::lock_guard lock(mutex_);
    return {spans_.begin(), spans_.end()};
}

std::uint64_t Tracer::recorded() const {
    std::lock_guard lock(mutex_);
    return recorded_;
}

std::uint64_t Tracer::dropped() const {
    std::lock_guard lock(mutex_);
    return dropped_;
}

void Tracer::clear() {
    std::lock_guard lock(mutex_);
    spans_.clear();
    recorded_ = 0;
    dropped_ = 0;
}

std::string Tracer::to_jsonl() const {
    std::lock_guard lock(mutex_);
    std::string out;
    char line[256];
    for (const Span& span : spans_) {
        const int n = std::snprintf(
            line, sizeof line,
            "{\"name\":\"%s\",\"start_ns\":%" PRId64 ",\"wall_ns\":%" PRId64
            ",\"sim_ns\":%" PRId64 ",\"thread\":%" PRIu64 "}\n",
            span.name.c_str(), span.start_ns, span.wall_ns, span.sim_ns,
            span.thread_id);
        if (n > 0) out.append(line, std::min<std::size_t>(n, sizeof line - 1));
    }
    return out;
}

ScopedSpan::ScopedSpan(std::string_view name, const util::SimTimeLedger* ledger,
                       Tracer& tracer)
    : tracer_(tracer), name_(name), ledger_(ledger), start_(Tracer::now_ns()) {
    if (ledger_ != nullptr) sim_start_ = ledger_->total_ns();
}

ScopedSpan::~ScopedSpan() {
    Span span;
    span.name = std::move(name_);
    span.start_ns = start_;
    span.wall_ns = Tracer::now_ns() - start_;
    if (ledger_ != nullptr) span.sim_ns = ledger_->total_ns() - sim_start_;
    tracer_.record(std::move(span));
}

}  // namespace ebv::obs
