#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ebv::obs {

namespace {

std::uint64_t this_thread_id() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::chrono::steady_clock::time_point trace_epoch() {
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

thread_local TraceContext t_context{};

std::atomic<std::uint64_t> g_next_id{1};

/// Ring health as registry metrics (satellite of the causal-trace layer):
/// a truncated trace is detectable from the bench's metrics snapshot
/// instead of silently missing spans.
struct TraceMetrics {
    Counter& recorded;
    Counter& dropped;
    Gauge& capacity;
    Gauge& enabled;

    static TraceMetrics& get() {
        static TraceMetrics m{
            Registry::global().counter("ebv.obs.spans_recorded"),
            Registry::global().counter("ebv.obs.spans_dropped"),
            Registry::global().gauge("ebv.obs.trace_capacity"),
            Registry::global().gauge("ebv.obs.trace_enabled"),
        };
        return m;
    }
};

/// Propagate the submitting thread's trace context across ThreadPool jobs:
/// capture at submit, swap in around each worker's chunk run. Installed at
/// static-init time — any binary that records spans links this object file
/// and gets causal nesting across parallel_for for free.
struct PoolHookInstaller {
    PoolHookInstaller() {
        util::ThreadPool::set_task_context_hooks(
            [] {
                const TraceContext c = current_context();
                return util::TaskContext{c.trace_id, c.span_id};
            },
            [](util::TaskContext ctx) {
                const TraceContext prev = swap_context({ctx.a, ctx.b});
                return util::TaskContext{prev.trace_id, prev.span_id};
            });
    }
};
const PoolHookInstaller g_pool_hooks;

}  // namespace

TraceContext current_context() { return t_context; }

TraceContext swap_context(TraceContext ctx) {
    const TraceContext prev = t_context;
    t_context = ctx;
    return prev;
}

std::uint64_t next_span_id() {
    return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::global() {
    static Tracer tracer;
    (void)trace_epoch();  // pin the epoch no later than first use
    return tracer;
}

util::Nanoseconds Tracer::now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - trace_epoch())
        .count();
}

void Tracer::publish_state() {
    TraceMetrics& m = TraceMetrics::get();
    m.enabled.set(enabled() ? 1 : 0);
    std::lock_guard lock(mutex_);
    m.capacity.set(static_cast<std::int64_t>(capacity_));
}

void Tracer::set_capacity(std::size_t spans) {
    {
        std::lock_guard lock(mutex_);
        capacity_ = spans;
        while (spans_.size() > capacity_) {
            spans_.pop_front();
            ++dropped_;
            TraceMetrics::get().dropped.inc();
        }
    }
    publish_state();
}

void Tracer::record(Span span) {
    if (!enabled()) return;
    if (span.thread_id == 0) span.thread_id = this_thread_id();
    TraceMetrics& m = TraceMetrics::get();
    m.recorded.inc();
    std::lock_guard lock(mutex_);
    ++recorded_;
    spans_.push_back(std::move(span));
    while (spans_.size() > capacity_) {
        spans_.pop_front();
        ++dropped_;
        m.dropped.inc();
    }
}

void Tracer::record(std::string_view name, util::TimeCost cost) {
    if (!enabled()) return;
    const TraceContext ctx = current_context();
    Span span;
    span.name = std::string(name);
    span.trace_id = ctx.trace_id;
    span.span_id = next_span_id();
    span.parent_id = ctx.span_id;
    span.wall_ns = cost.wall_ns;
    span.sim_ns = cost.simulated_ns;
    span.start_ns = now_ns() - cost.wall_ns;
    record(std::move(span));
}

void Tracer::record_counter(std::string_view name, std::int64_t value) {
    if (!enabled()) return;
    Span span;
    span.name = std::string(name);
    span.kind = SpanKind::kCounter;
    span.start_ns = now_ns();
    span.value = value;
    record(std::move(span));
}

std::vector<Span> Tracer::snapshot() const {
    std::lock_guard lock(mutex_);
    return {spans_.begin(), spans_.end()};
}

std::uint64_t Tracer::recorded() const {
    std::lock_guard lock(mutex_);
    return recorded_;
}

std::uint64_t Tracer::dropped() const {
    std::lock_guard lock(mutex_);
    return dropped_;
}

void Tracer::clear() {
    std::lock_guard lock(mutex_);
    spans_.clear();
    recorded_ = 0;
    dropped_ = 0;
}

std::string Tracer::to_jsonl() const {
    std::lock_guard lock(mutex_);
    std::string out;
    char line[384];
    for (const Span& span : spans_) {
        const int n = std::snprintf(
            line, sizeof line,
            "{\"name\":\"%s\",\"cat\":\"%s\",\"trace\":%" PRIu64
            ",\"id\":%" PRIu64 ",\"parent\":%" PRIu64 ",\"start_ns\":%" PRId64
            ",\"wall_ns\":%" PRId64 ",\"sim_ns\":%" PRId64
            ",\"thread\":%" PRIu64 ",\"value\":%" PRId64 ",\"kind\":%u}\n",
            span.name.c_str(), span.category, span.trace_id, span.span_id,
            span.parent_id, span.start_ns, span.wall_ns, span.sim_ns,
            span.thread_id, span.value, static_cast<unsigned>(span.kind));
        if (n > 0) out.append(line, std::min<std::size_t>(n, sizeof line - 1));
    }
    return out;
}

ScopedSpan::ScopedSpan(std::string_view name, const char* category,
                       const util::SimTimeLedger* ledger, Tracer& tracer)
    : tracer_(tracer), name_(name), category_(category), ledger_(ledger) {
    if (!tracer_.enabled()) return;  // the no-op fast path: one atomic load
    active_ = true;
    span_id_ = next_span_id();
    const TraceContext parent = current_context();
    trace_id_ = parent.trace_id != 0 ? parent.trace_id : next_span_id();
    prev_ = swap_context({trace_id_, span_id_});
    start_ = Tracer::now_ns();
    if (ledger_ != nullptr) sim_start_ = ledger_->total_ns();
}

ScopedSpan::~ScopedSpan() {
    if (!active_) return;
    const util::Nanoseconds end = Tracer::now_ns();
    swap_context(prev_);
    Span span;
    span.name = std::string(name_);
    span.category = category_;
    span.trace_id = trace_id_;
    span.span_id = span_id_;
    span.parent_id = prev_.span_id;
    span.start_ns = start_;
    span.wall_ns = end - start_;
    span.value = value_;
    if (ledger_ != nullptr) span.sim_ns = ledger_->total_ns() - sim_start_;
    tracer_.record(std::move(span));
}

}  // namespace ebv::obs
