// A Utreexo-style dynamic hash accumulator (Dryja, "Utreexo: a dynamic
// hash-based accumulator optimized for the bitcoin UTXO set") — the
// related-work baseline of paper §VII-B. The UTXO set is represented as a
// forest of perfect Merkle trees (one per set bit of the leaf count, like a
// binary counter); a stateless validator stores only the O(log n) roots and
// verifies membership proofs carried by transactions.
//
// Additions follow the standard carry rule. Deletions use swap-with-last:
// the forest's rightmost leaf replaces the deleted leaf and hashes are
// recomputed along its path (same asymptotics and, crucially, the same
// proof-churn behaviour the paper criticizes: other leaves' proofs go stale
// whenever the forest reshapes). A "bridge" (this full structure) keeps all
// nodes so it can serve fresh proofs — also as in Utreexo deployments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/hash_types.hpp"

namespace ebv::accumulator {

/// A membership proof: the leaf's sibling hashes bottom-up plus, per level,
/// whether the sibling sits to the left. Folding must land on a current
/// forest root.
struct ForestProof {
    crypto::Hash256 leaf;
    std::vector<std::pair<crypto::Hash256, bool>> siblings;  // (hash, sibling_is_left)

    [[nodiscard]] std::size_t byte_size() const { return 32 + siblings.size() * 33; }
};

class MerkleForest {
public:
    using LeafId = std::uint64_t;

    MerkleForest() = default;
    ~MerkleForest();

    MerkleForest(const MerkleForest&) = delete;
    MerkleForest& operator=(const MerkleForest&) = delete;

    /// Insert a leaf; returns a stable handle for later proofs/removal.
    LeafId add(const crypto::Hash256& leaf_hash);

    /// Remove a leaf. Returns false for unknown/already-removed handles.
    bool remove(LeafId id);

    /// Build a (currently fresh) membership proof.
    [[nodiscard]] std::optional<ForestProof> prove(LeafId id) const;

    /// Stateless-validator check: does the proof fold onto a current root?
    [[nodiscard]] bool verify(const ForestProof& proof) const;

    /// The accumulator state a stateless node stores.
    [[nodiscard]] std::vector<crypto::Hash256> roots() const;
    [[nodiscard]] std::size_t root_count() const { return roots_.size(); }
    /// Bytes of that state (the EBV-vs-accumulator memory comparison).
    [[nodiscard]] std::size_t state_bytes() const { return roots_.size() * 32; }

    [[nodiscard]] std::uint64_t leaf_count() const { return leaf_map_.size(); }

    /// Monotone counter bumped whenever existing proofs may have gone
    /// stale (any structural change). Proof holders compare generations to
    /// know when to refresh — the "update your proofs every block" burden.
    [[nodiscard]] std::uint64_t generation() const { return generation_; }

private:
    struct Node {
        crypto::Hash256 hash;
        Node* parent = nullptr;
        std::unique_ptr<Node> left;
        std::unique_ptr<Node> right;
        LeafId leaf_id = 0;  // leaves only

        [[nodiscard]] bool is_leaf() const { return !left && !right; }
    };

    static crypto::Hash256 join_hash(const crypto::Hash256& l, const crypto::Hash256& r);

    /// Merge two equal-height trees into one (carry step).
    std::unique_ptr<Node> join(std::unique_ptr<Node> l, std::unique_ptr<Node> r);

    /// Remove the rightmost leaf of the lowest tree; left-spine subtrees
    /// become roots. Returns the detached leaf node.
    std::unique_ptr<Node> pop_last_leaf();

    void recompute_upward(Node* node);
    void insert_root(int height, std::unique_ptr<Node> root);

    [[nodiscard]] int height_of_root(const Node* root) const;

    // Roots by tree height; at most one per height (binary-counter shape).
    std::map<int, std::unique_ptr<Node>> roots_;
    std::unordered_map<LeafId, Node*> leaf_map_;
    LeafId next_id_ = 1;
    std::uint64_t generation_ = 0;
};

}  // namespace ebv::accumulator
