#include "accumulator/forest.hpp"

#include "crypto/sha256.hpp"
#include "util/assert.hpp"

namespace ebv::accumulator {

MerkleForest::~MerkleForest() = default;  // unique_ptr trees free recursively

crypto::Hash256 MerkleForest::join_hash(const crypto::Hash256& l,
                                        const crypto::Hash256& r) {
    crypto::Sha256 h;
    h.update(l.span());
    h.update(r.span());
    const auto once = h.finalize();
    return crypto::Hash256::from_span(
        util::ByteSpan{crypto::Sha256::hash({once.data(), once.size()}).data(), 32});
}

std::unique_ptr<MerkleForest::Node> MerkleForest::join(std::unique_ptr<Node> l,
                                                       std::unique_ptr<Node> r) {
    auto parent = std::make_unique<Node>();
    parent->hash = join_hash(l->hash, r->hash);
    l->parent = parent.get();
    r->parent = parent.get();
    parent->left = std::move(l);
    parent->right = std::move(r);
    return parent;
}

MerkleForest::LeafId MerkleForest::add(const crypto::Hash256& leaf_hash) {
    auto leaf = std::make_unique<Node>();
    leaf->hash = leaf_hash;
    leaf->leaf_id = next_id_++;
    leaf_map_[leaf->leaf_id] = leaf.get();
    const LeafId id = leaf->leaf_id;

    // Binary-counter carry.
    std::unique_ptr<Node> carry = std::move(leaf);
    int height = 0;
    for (;;) {
        const auto it = roots_.find(height);
        if (it == roots_.end()) break;
        std::unique_ptr<Node> existing = std::move(it->second);
        roots_.erase(it);
        carry = join(std::move(existing), std::move(carry));
        ++height;
    }
    carry->parent = nullptr;
    roots_.emplace(height, std::move(carry));

    ++generation_;
    return id;
}

std::unique_ptr<MerkleForest::Node> MerkleForest::pop_last_leaf() {
    EBV_EXPECTS(!roots_.empty());
    const auto it = roots_.begin();  // lowest height
    int height = it->first;
    std::unique_ptr<Node> tree = std::move(it->second);
    roots_.erase(it);

    // Walk the right spine; each left child becomes a root one level down.
    while (!tree->is_leaf()) {
        --height;
        std::unique_ptr<Node> left = std::move(tree->left);
        std::unique_ptr<Node> right = std::move(tree->right);
        left->parent = nullptr;
        right->parent = nullptr;
        insert_root(height, std::move(left));
        tree = std::move(right);
    }
    return tree;
}

void MerkleForest::insert_root(int height, std::unique_ptr<Node> root) {
    // Heights freed by pop_last_leaf are always vacant: the popped tree was
    // the *lowest* root, so no smaller trees exist to collide with.
    root->parent = nullptr;
    const auto [it, inserted] = roots_.emplace(height, std::move(root));
    EBV_ASSERT(inserted);
}

void MerkleForest::recompute_upward(Node* node) {
    for (Node* cur = node->parent; cur != nullptr; cur = cur->parent) {
        cur->hash = join_hash(cur->left->hash, cur->right->hash);
    }
}

bool MerkleForest::remove(LeafId id) {
    const auto it = leaf_map_.find(id);
    if (it == leaf_map_.end()) return false;
    Node* doomed = it->second;

    // Detach the forest's rightmost leaf (from the lowest tree).
    std::unique_ptr<Node> last = pop_last_leaf();

    if (last->leaf_id == id) {
        // The doomed leaf *was* the rightmost one: we are done.
        leaf_map_.erase(it);
        ++generation_;
        return true;
    }

    // Substitute the popped leaf into the doomed leaf's slot and rehash the
    // path. (The doomed node object is reused as the slot.)
    leaf_map_.erase(it);
    doomed->hash = last->hash;
    doomed->leaf_id = last->leaf_id;
    leaf_map_[doomed->leaf_id] = doomed;
    recompute_upward(doomed);

    ++generation_;
    return true;
}

std::optional<ForestProof> MerkleForest::prove(LeafId id) const {
    const auto it = leaf_map_.find(id);
    if (it == leaf_map_.end()) return std::nullopt;

    ForestProof proof;
    proof.leaf = it->second->hash;
    for (const Node* cur = it->second; cur->parent != nullptr; cur = cur->parent) {
        const Node* parent = cur->parent;
        const bool sibling_is_left = parent->right.get() == cur;
        const Node* sibling =
            sibling_is_left ? parent->left.get() : parent->right.get();
        proof.siblings.emplace_back(sibling->hash, sibling_is_left);
    }
    return proof;
}

bool MerkleForest::verify(const ForestProof& proof) const {
    crypto::Hash256 acc = proof.leaf;
    for (const auto& [sibling, sibling_is_left] : proof.siblings) {
        acc = sibling_is_left ? join_hash(sibling, acc) : join_hash(acc, sibling);
    }
    for (const auto& [height, root] : roots_) {
        if (root->hash == acc) return true;
    }
    return false;
}

std::vector<crypto::Hash256> MerkleForest::roots() const {
    std::vector<crypto::Hash256> out;
    out.reserve(roots_.size());
    for (const auto& [height, root] : roots_) out.push_back(root->hash);
    return out;
}

int MerkleForest::height_of_root(const Node* root) const {
    int height = 0;
    for (const Node* cur = root; !cur->is_leaf(); cur = cur->left.get()) ++height;
    return height;
}

}  // namespace ebv::accumulator
