#include "core/bitvector.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ebv::core {

namespace {
// Memory accounting mirrors the wire encoding of Fig 13b: a flag byte plus
// a 16-bit length for the dense form; flag, length, and a 16-bit count for
// the sparse form.
constexpr std::size_t kDenseOverhead = 3;
constexpr std::size_t kSparseOverhead = 5;
}

BitVector BitVector::all_ones(std::uint32_t bits) {
    EBV_EXPECTS(bits <= 65'535);  // the paper's 16-bit index bound
    BitVector v;
    v.size_ = bits;
    v.ones_ = bits;
    v.bitmap_.assign((bits + 7) / 8, 0xff);
    if (bits % 8 != 0 && !v.bitmap_.empty()) {
        v.bitmap_.back() = static_cast<std::uint8_t>(0xff >> (8 - bits % 8));
    }
    return v;
}

BitVector BitVector::all_zeros(std::uint32_t bits) {
    EBV_EXPECTS(bits <= 65'535);
    BitVector v;
    v.size_ = bits;
    v.ones_ = 0;
    v.sparse_ = true;
    return v;
}

bool BitVector::test(std::uint32_t index) const {
    if (index >= size_) return false;
    if (!sparse_) return (bitmap_[index / 8] >> (index % 8)) & 1;
    return std::binary_search(one_indexes_.begin(), one_indexes_.end(),
                              static_cast<std::uint16_t>(index));
}

bool BitVector::reset(std::uint32_t index) {
    if (index >= size_) return false;
    if (!sparse_) {
        std::uint8_t& byte = bitmap_[index / 8];
        const std::uint8_t mask = static_cast<std::uint8_t>(1u << (index % 8));
        if (!(byte & mask)) return false;
        byte &= static_cast<std::uint8_t>(~mask);
        --ones_;
        maybe_compact();
        return true;
    }
    const auto it = std::lower_bound(one_indexes_.begin(), one_indexes_.end(),
                                     static_cast<std::uint16_t>(index));
    if (it == one_indexes_.end() || *it != index) return false;
    one_indexes_.erase(it);
    --ones_;
    return true;
}

bool BitVector::set(std::uint32_t index) {
    if (index >= size_) return false;
    if (!sparse_) {
        std::uint8_t& byte = bitmap_[index / 8];
        const std::uint8_t mask = static_cast<std::uint8_t>(1u << (index % 8));
        if (byte & mask) return false;
        byte |= mask;
        ++ones_;
        return true;
    }
    const auto it = std::lower_bound(one_indexes_.begin(), one_indexes_.end(),
                                     static_cast<std::uint16_t>(index));
    if (it != one_indexes_.end() && *it == index) return false;
    one_indexes_.insert(it, static_cast<std::uint16_t>(index));
    ++ones_;
    // Convert back to the bitmap once the index array stops paying off.
    if (kSparseOverhead + static_cast<std::size_t>(ones_) * 2 >=
        kDenseOverhead + (size_ + 7) / 8) {
        bitmap_.assign((size_ + 7) / 8, 0);
        for (const std::uint16_t i : one_indexes_) {
            bitmap_[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
        }
        one_indexes_.clear();
        one_indexes_.shrink_to_fit();
        sparse_ = false;
    }
    return true;
}

std::size_t BitVector::memory_bytes() const {
    if (sparse_) return kSparseOverhead + one_indexes_.size() * 2;
    return kDenseOverhead + bitmap_.size();
}

std::size_t BitVector::dense_memory_bytes() const {
    return kDenseOverhead + (size_ + 7) / 8;
}

void BitVector::maybe_compact() {
    // Switch once the sparse encoding is strictly smaller than the bitmap.
    if (sparse_) return;
    if (kSparseOverhead + static_cast<std::size_t>(ones_) * 2 <
        kDenseOverhead + bitmap_.size()) {
        to_sparse();
    }
}

void BitVector::to_sparse() {
    one_indexes_.clear();
    one_indexes_.reserve(ones_);
    for (std::uint32_t i = 0; i < size_; ++i) {
        if ((bitmap_[i / 8] >> (i % 8)) & 1)
            one_indexes_.push_back(static_cast<std::uint16_t>(i));
    }
    EBV_ASSERT(one_indexes_.size() == ones_);
    bitmap_.clear();
    bitmap_.shrink_to_fit();
    sparse_ = true;
}

void BitVector::serialize(util::Writer& w) const {
    w.u8(sparse_ ? 1 : 0);
    w.u16(static_cast<std::uint16_t>(size_));
    if (sparse_) {
        w.u16(static_cast<std::uint16_t>(one_indexes_.size()));
        for (std::uint16_t idx : one_indexes_) w.u16(idx);
    } else {
        w.bytes(bitmap_);
    }
}

util::Result<BitVector, util::DecodeError> BitVector::deserialize(util::Reader& r) {
    auto flag = r.u8();
    if (!flag) return util::Unexpected{flag.error()};
    auto size = r.u16();
    if (!size) return util::Unexpected{size.error()};

    BitVector v;
    v.size_ = *size;

    if (*flag == 1) {
        v.sparse_ = true;
        auto count = r.u16();
        if (!count) return util::Unexpected{count.error()};
        if (*count > *size) return util::Unexpected{util::DecodeError::kMalformed};
        v.one_indexes_.reserve(*count);
        std::uint32_t prev = 0;
        for (std::uint32_t i = 0; i < *count; ++i) {
            auto idx = r.u16();
            if (!idx) return util::Unexpected{idx.error()};
            if (*idx >= *size) return util::Unexpected{util::DecodeError::kMalformed};
            if (i > 0 && *idx <= prev) return util::Unexpected{util::DecodeError::kMalformed};
            prev = *idx;
            v.one_indexes_.push_back(*idx);
        }
        v.ones_ = *count;
        return v;
    }
    if (*flag != 0) return util::Unexpected{util::DecodeError::kMalformed};

    auto bitmap = r.bytes((*size + 7) / 8);
    if (!bitmap) return util::Unexpected{bitmap.error()};
    v.bitmap_ = std::move(*bitmap);
    // Reject set bits beyond `size` (non-canonical padding).
    if (*size % 8 != 0 && !v.bitmap_.empty()) {
        if (v.bitmap_.back() & static_cast<std::uint8_t>(0xff << (*size % 8)))
            return util::Unexpected{util::DecodeError::kMalformed};
    }
    std::uint32_t ones = 0;
    for (std::uint8_t byte : v.bitmap_) ones += static_cast<std::uint32_t>(__builtin_popcount(byte));
    v.ones_ = ones;
    return v;
}

bool operator==(const BitVector& a, const BitVector& b) {
    if (a.size_ != b.size_ || a.ones_ != b.ones_) return false;
    for (std::uint32_t i = 0; i < a.size_; ++i) {
        if (a.test(i) != b.test(i)) return false;
    }
    return true;
}

}  // namespace ebv::core
