#include "core/ebv_transaction.hpp"

#include "crypto/sha256.hpp"

namespace ebv::core {

namespace {

constexpr std::size_t kMaxInputsPerTx = 1 << 16;
constexpr std::size_t kMaxOutputsPerTx = 1 << 16;
constexpr std::size_t kMaxScriptBytes = 1 << 16;
constexpr std::size_t kMaxCoinbaseData = 256;

void serialize_txout(util::Writer& w, const chain::TxOut& out) {
    w.i64(out.value);
    w.var_bytes(out.lock_script);
}

util::Result<chain::TxOut, util::DecodeError> deserialize_txout(util::Reader& r) {
    chain::TxOut out;
    auto value = r.i64();
    if (!value) return util::Unexpected{value.error()};
    out.value = *value;
    auto script = r.var_bytes(kMaxScriptBytes);
    if (!script) return util::Unexpected{script.error()};
    out.lock_script = std::move(*script);
    return out;
}

std::size_t txout_size(const chain::TxOut& out) {
    return 8 + util::compact_size_length(out.lock_script.size()) + out.lock_script.size();
}

std::size_t txouts_size(const std::vector<chain::TxOut>& outs) {
    std::size_t size = util::compact_size_length(outs.size());
    for (const auto& out : outs) size += txout_size(out);
    return size;
}

}  // namespace

// ---------------------------------------------------------------- Tidy ----

void TidyTransaction::serialize(util::Writer& w) const {
    w.u32(version);
    w.compact_size(input_hashes.size());
    for (const auto& h : input_hashes) w.bytes(h.span());
    w.compact_size(outputs.size());
    for (const auto& out : outputs) serialize_txout(w, out);
    w.u32(locktime);
    w.var_bytes(coinbase_data);
    w.u32(stake_position);
}

util::Result<TidyTransaction, util::DecodeError> TidyTransaction::deserialize(
    util::Reader& r) {
    TidyTransaction tx;
    auto version = r.u32();
    if (!version) return util::Unexpected{version.error()};
    tx.version = *version;

    auto in_count = r.compact_size();
    if (!in_count) return util::Unexpected{in_count.error()};
    if (*in_count > kMaxInputsPerTx) return util::Unexpected{util::DecodeError::kOversizedField};
    tx.input_hashes.reserve(static_cast<std::size_t>(*in_count));
    for (std::uint64_t i = 0; i < *in_count; ++i) {
        auto bytes = r.bytes(32);
        if (!bytes) return util::Unexpected{bytes.error()};
        tx.input_hashes.push_back(crypto::Hash256::from_span(*bytes));
    }

    auto out_count = r.compact_size();
    if (!out_count) return util::Unexpected{out_count.error()};
    if (*out_count > kMaxOutputsPerTx)
        return util::Unexpected{util::DecodeError::kOversizedField};
    tx.outputs.reserve(static_cast<std::size_t>(*out_count));
    for (std::uint64_t i = 0; i < *out_count; ++i) {
        auto out = deserialize_txout(r);
        if (!out) return util::Unexpected{out.error()};
        tx.outputs.push_back(std::move(*out));
    }

    auto locktime = r.u32();
    if (!locktime) return util::Unexpected{locktime.error()};
    tx.locktime = *locktime;

    auto cb = r.var_bytes(kMaxCoinbaseData);
    if (!cb) return util::Unexpected{cb.error()};
    tx.coinbase_data = std::move(*cb);

    auto stake = r.u32();
    if (!stake) return util::Unexpected{stake.error()};
    tx.stake_position = *stake;
    return tx;
}

crypto::Hash256 TidyTransaction::leaf_hash() const {
    util::Writer w(serialized_size());
    serialize(w);
    return crypto::hash256(w.data());
}

std::size_t TidyTransaction::serialized_size() const {
    // Analytic mirror of serialize(): leaf_hash() and proof-byte accounting
    // call this on hot paths, so no throwaway serialization pass.
    return 4 /* version */
           + util::compact_size_length(input_hashes.size()) + 32 * input_hashes.size()
           + txouts_size(outputs) + 4 /* locktime */
           + util::compact_size_length(coinbase_data.size()) + coinbase_data.size()
           + 4 /* stake_position */;
}

// --------------------------------------------------------------- Input ----

void EbvInput::serialize(util::Writer& w) const {
    prevout.serialize(w);
    w.u32(sequence);
    w.u32(height);
    w.u16(out_index);
    w.var_bytes(unlock_script);
    els.serialize(w);
    mbr.serialize(w);
}

util::Result<EbvInput, util::DecodeError> EbvInput::deserialize(util::Reader& r) {
    EbvInput in;
    auto prevout = chain::OutPoint::deserialize(r);
    if (!prevout) return util::Unexpected{prevout.error()};
    in.prevout = *prevout;

    auto sequence = r.u32();
    if (!sequence) return util::Unexpected{sequence.error()};
    in.sequence = *sequence;

    auto height = r.u32();
    if (!height) return util::Unexpected{height.error()};
    in.height = *height;

    auto out_index = r.u16();
    if (!out_index) return util::Unexpected{out_index.error()};
    in.out_index = *out_index;

    auto script = r.var_bytes(kMaxScriptBytes);
    if (!script) return util::Unexpected{script.error()};
    in.unlock_script = std::move(*script);

    auto els = TidyTransaction::deserialize(r);
    if (!els) return util::Unexpected{els.error()};
    in.els = std::move(*els);

    auto mbr = crypto::MerkleBranch::deserialize(r);
    if (!mbr) return util::Unexpected{mbr.error()};
    in.mbr = std::move(*mbr);
    return in;
}

crypto::Hash256 EbvInput::input_hash() const {
    util::Writer w(serialized_size());
    serialize(w);
    return crypto::hash256(w.data());
}

std::size_t EbvInput::serialized_size() const {
    return 36 /* prevout */ + 4 /* sequence */ + 4 /* height */ + 2 /* out_index */
           + util::compact_size_length(unlock_script.size()) + unlock_script.size()
           + els.serialized_size()
           + util::compact_size_length(mbr.siblings.size()) + 32 * mbr.siblings.size() +
           4 /* mbr.index */;
}

// --------------------------------------------------------- Transaction ----

TidyTransaction EbvTransaction::tidy() const {
    TidyTransaction t;
    t.version = version;
    t.input_hashes.reserve(inputs.size());
    for (const auto& in : inputs) t.input_hashes.push_back(in.input_hash());
    t.outputs = outputs;
    t.locktime = locktime;
    t.coinbase_data = coinbase_data;
    t.stake_position = stake_position;
    return t;
}

void EbvTransaction::serialize(util::Writer& w) const {
    w.u32(version);
    w.compact_size(inputs.size());
    for (const auto& in : inputs) in.serialize(w);
    w.compact_size(outputs.size());
    for (const auto& out : outputs) serialize_txout(w, out);
    w.u32(locktime);
    w.var_bytes(coinbase_data);
    w.u32(stake_position);
}

util::Result<EbvTransaction, util::DecodeError> EbvTransaction::deserialize(
    util::Reader& r) {
    EbvTransaction tx;
    auto version = r.u32();
    if (!version) return util::Unexpected{version.error()};
    tx.version = *version;

    auto in_count = r.compact_size();
    if (!in_count) return util::Unexpected{in_count.error()};
    if (*in_count > kMaxInputsPerTx) return util::Unexpected{util::DecodeError::kOversizedField};
    tx.inputs.reserve(static_cast<std::size_t>(*in_count));
    for (std::uint64_t i = 0; i < *in_count; ++i) {
        auto in = EbvInput::deserialize(r);
        if (!in) return util::Unexpected{in.error()};
        tx.inputs.push_back(std::move(*in));
    }

    auto out_count = r.compact_size();
    if (!out_count) return util::Unexpected{out_count.error()};
    if (*out_count > kMaxOutputsPerTx)
        return util::Unexpected{util::DecodeError::kOversizedField};
    tx.outputs.reserve(static_cast<std::size_t>(*out_count));
    for (std::uint64_t i = 0; i < *out_count; ++i) {
        auto out = deserialize_txout(r);
        if (!out) return util::Unexpected{out.error()};
        tx.outputs.push_back(std::move(*out));
    }

    auto locktime = r.u32();
    if (!locktime) return util::Unexpected{locktime.error()};
    tx.locktime = *locktime;

    auto cb = r.var_bytes(kMaxCoinbaseData);
    if (!cb) return util::Unexpected{cb.error()};
    tx.coinbase_data = std::move(*cb);

    auto stake = r.u32();
    if (!stake) return util::Unexpected{stake.error()};
    tx.stake_position = *stake;
    return tx;
}

std::size_t EbvTransaction::serialized_size() const {
    std::size_t size = 4 /* version */ + util::compact_size_length(inputs.size());
    for (const auto& in : inputs) size += in.serialized_size();
    size += txouts_size(outputs) + 4 /* locktime */
            + util::compact_size_length(coinbase_data.size()) + coinbase_data.size()
            + 4 /* stake_position */;
    return size;
}

chain::Amount EbvTransaction::total_output_value() const {
    chain::Amount total = 0;
    for (const auto& out : outputs) total += out.value;
    return total;
}

crypto::Hash256 ebv_signature_hash(const EbvTransaction& tx, std::size_t input_index,
                                   util::ByteSpan script_code, std::uint8_t hash_type) {
    // Must match chain::signature_hash over the corresponding Bitcoin-style
    // transaction byte for byte. Exact analytic preimage size: blanked
    // inputs are 41 bytes; input_index swaps its 1-byte blank for
    // var_bytes(script_code).
    util::Writer w(4 + util::compact_size_length(tx.inputs.size()) + 41 * tx.inputs.size() -
                   1 + util::compact_size_length(script_code.size()) + script_code.size() +
                   txouts_size(tx.outputs) + 4 /* locktime */ + 4 /* hash_type */);
    w.u32(tx.version);
    w.compact_size(tx.inputs.size());
    for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
        tx.inputs[i].prevout.serialize(w);
        if (i == input_index) {
            w.var_bytes(script_code);
        } else {
            w.compact_size(0);
        }
        w.u32(tx.inputs[i].sequence);
    }
    w.compact_size(tx.outputs.size());
    for (const auto& out : tx.outputs) serialize_txout(w, out);
    w.u32(tx.locktime);
    w.u32(hash_type);
    return crypto::hash256(w.data());
}

// --------------------------------------------------------------- Block ----

std::vector<crypto::Hash256> EbvBlock::merkle_leaves() const {
    const std::size_t n = txs.size();
    std::vector<crypto::Hash256> leaves(n);
    if (n == 0) return leaves;

    // Stage 1: all input-body hashes across the block in one batch.
    std::size_t total_inputs = 0;
    for (const auto& tx : txs) total_inputs += tx.inputs.size();
    std::vector<util::Bytes> input_bufs;
    std::vector<util::ByteSpan> spans;
    input_bufs.reserve(total_inputs);
    spans.reserve(total_inputs);
    for (const auto& tx : txs) {
        for (const auto& in : tx.inputs) {
            util::Writer w(in.serialized_size());
            in.serialize(w);
            input_bufs.push_back(w.take());
            spans.emplace_back(input_bufs.back().data(), input_bufs.back().size());
        }
    }
    std::vector<crypto::Sha256::Digest> input_digests(total_inputs);
    crypto::sha256d_many(spans.data(), input_digests.data(), total_inputs);

    // Stage 2: tidy serializations over the precomputed hashes, then all
    // leaf hashes in a second batch.
    std::vector<util::Bytes> leaf_bufs(n);
    std::vector<util::ByteSpan> leaf_spans(n);
    std::size_t cursor = 0;
    for (std::size_t t = 0; t < n; ++t) {
        const EbvTransaction& tx = txs[t];
        TidyTransaction tidy;
        tidy.version = tx.version;
        tidy.input_hashes.reserve(tx.inputs.size());
        for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
            const auto& d = input_digests[cursor++];
            tidy.input_hashes.push_back(crypto::Hash256::from_span({d.data(), d.size()}));
        }
        tidy.outputs = tx.outputs;
        tidy.locktime = tx.locktime;
        tidy.coinbase_data = tx.coinbase_data;
        tidy.stake_position = tx.stake_position;

        util::Writer w(tidy.serialized_size());
        tidy.serialize(w);
        leaf_bufs[t] = w.take();
        leaf_spans[t] = {leaf_bufs[t].data(), leaf_bufs[t].size()};
    }
    std::vector<crypto::Sha256::Digest> leaf_digests(n);
    crypto::sha256d_many(leaf_spans.data(), leaf_digests.data(), n);
    for (std::size_t t = 0; t < n; ++t)
        leaves[t] = crypto::Hash256::from_span({leaf_digests[t].data(), leaf_digests[t].size()});
    return leaves;
}

crypto::Hash256 EbvBlock::compute_merkle_root() const {
    return crypto::merkle_root(merkle_leaves());
}

void EbvBlock::assign_stake_positions() {
    std::uint32_t running = 0;
    for (auto& tx : txs) {
        tx.stake_position = running;
        running += static_cast<std::uint32_t>(tx.outputs.size());
    }
    header.merkle_root = compute_merkle_root();
}

void EbvBlock::serialize(util::Writer& w) const {
    header.serialize(w);
    w.compact_size(txs.size());
    for (const auto& tx : txs) tx.serialize(w);
}

util::Result<EbvBlock, util::DecodeError> EbvBlock::deserialize(util::Reader& r) {
    EbvBlock block;
    auto header = chain::BlockHeader::deserialize(r);
    if (!header) return util::Unexpected{header.error()};
    block.header = *header;

    auto count = r.compact_size();
    if (!count) return util::Unexpected{count.error()};
    if (*count > (1u << 20)) return util::Unexpected{util::DecodeError::kOversizedField};
    block.txs.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
        auto tx = EbvTransaction::deserialize(r);
        if (!tx) return util::Unexpected{tx.error()};
        block.txs.push_back(std::move(*tx));
    }
    return block;
}

std::size_t EbvBlock::serialized_size() const {
    std::size_t size =
        chain::BlockHeader::kSerializedSize + util::compact_size_length(txs.size());
    for (const auto& tx : txs) size += tx.serialized_size();
    return size;
}

std::size_t EbvBlock::input_count() const {
    std::size_t count = 0;
    for (const auto& tx : txs) count += tx.inputs.size();
    return count;
}

std::size_t EbvBlock::output_count() const {
    std::size_t count = 0;
    for (const auto& tx : txs) count += tx.outputs.size();
    return count;
}

}  // namespace ebv::core
