// The EBV status database: block height → bit-vector. Small enough to live
// entirely in memory (the paper's headline memory reduction), with optional
// snapshot persistence. Fully-spent vectors are deleted (§IV-E1); the
// optimized/unoptimized memory totals are maintained incrementally so the
// Fig 14 bench is O(1) per sample.
//
// The set is internally sharded by height (height mod kShardCount): each
// shard owns its own map and memory accounting, so spent-bit application
// can run from inside a parallel region — the IBD pipeline (`ebv::ibd`)
// partitions a window's validated spends by shard and applies distinct
// shards concurrently (`spend_shard`), which is what lets block storage
// ("stage 3") join the fused EV+SV parallel pass instead of running
// serially after it. All single-call methods remain single-threaded
// mutators; only spend_shard on *distinct* shards may overlap.
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bitvector.hpp"

namespace ebv::util {
class ThreadPool;
}

namespace ebv::core {

enum class UvError {
    kUnknownHeight,   ///< no vector: height never existed or fully spent
    kIndexOutOfRange,
    kAlreadySpent,    ///< bit is 0
};

[[nodiscard]] const char* to_string(UvError e);

class BitVectorSet {
public:
    /// Shard fan-out for parallel spent-bit application. A power of two so
    /// shard_of is a mask; 16 keeps per-shard batches meaty even for small
    /// windows while exceeding any realistic commit-thread count.
    static constexpr std::size_t kShardCount = 16;

    /// One UV-validated spend awaiting application.
    struct SpentRecord {
        std::uint32_t height;
        std::uint32_t position;
    };

    [[nodiscard]] static constexpr std::size_t shard_of(std::uint32_t height) {
        return height & (kShardCount - 1);
    }

    /// Register a newly-connected block's outputs (all unspent).
    void insert_block(std::uint32_t height, std::uint32_t output_count);

    /// UV check only: is the output at `position` (absolute, block-wide)
    /// still unspent?
    [[nodiscard]] util::Status<UvError> check_unspent(std::uint32_t height,
                                                      std::uint32_t position) const;

    /// Mark spent (block-storage step). Deletes the vector when it empties.
    util::Status<UvError> spend(std::uint32_t height, std::uint32_t position);

    /// Apply a batch of UV-validated spends for one shard. Every record
    /// must satisfy shard_of(height) == shard and target a set bit
    /// (asserted). Calls on *distinct* shards may run concurrently — they
    /// touch disjoint maps and disjoint accounting.
    void spend_shard(std::size_t shard, const SpentRecord* records, std::size_t count);

    /// Partition `spends` by shard and apply them, one parallel task per
    /// populated shard when `pool` is given (serially otherwise).
    void spend_batch(const std::vector<SpentRecord>& spends,
                     util::ThreadPool* pool = nullptr);

    /// Reorg support: set a bit back to unspent. `vector_size` recreates
    /// the vector if it had been deleted as fully spent (all other bits are
    /// then provably zero). Returns false if the bit was already set.
    bool unspend(std::uint32_t height, std::uint32_t position, std::uint32_t vector_size);

    /// Reorg support: drop the vector of a disconnected block entirely.
    void remove_block(std::uint32_t height);

    [[nodiscard]] std::size_t vector_count() const;
    [[nodiscard]] bool has_vector(std::uint32_t height) const {
        return shards_[shard_of(height)].vectors.count(height) != 0;
    }

    /// Current memory requirement with the sparse-vector optimization
    /// (Fig 14 "EBV").
    [[nodiscard]] std::size_t memory_bytes() const;
    /// Memory if every vector stayed a dense bitmap (Fig 14 "EBV w/o
    /// optimization").
    [[nodiscard]] std::size_t dense_memory_bytes() const;

    /// Snapshot persistence (one record per surviving vector).
    void save(const std::string& path) const;
    static util::Result<BitVectorSet, util::DecodeError> load(const std::string& path);

    /// In-stream forms (used by node-level snapshots).
    void serialize(util::Writer& w) const;
    static util::Result<BitVectorSet, util::DecodeError> deserialize(util::Reader& r);

    friend bool operator==(const BitVectorSet&, const BitVectorSet&);

private:
    /// One height-partition: its vectors plus incremental Fig 14 byte
    /// accounting. No shared state between shards, by construction.
    struct Shard {
        std::unordered_map<std::uint32_t, BitVector> vectors;
        std::size_t optimized_bytes = 0;
        std::size_t dense_bytes = 0;
    };

    static void account_remove(Shard& s, const BitVector& v);
    static void account_add(Shard& s, const BitVector& v);

    std::array<Shard, kShardCount> shards_;
};

}  // namespace ebv::core
