// The EBV status database: block height → bit-vector. Small enough to live
// entirely in memory (the paper's headline memory reduction), with optional
// snapshot persistence. Fully-spent vectors are deleted (§IV-E1); the
// optimized/unoptimized memory totals are maintained incrementally so the
// Fig 14 bench is O(1) per sample.
#pragma once

#include <string>
#include <unordered_map>

#include "core/bitvector.hpp"

namespace ebv::core {

enum class UvError {
    kUnknownHeight,   ///< no vector: height never existed or fully spent
    kIndexOutOfRange,
    kAlreadySpent,    ///< bit is 0
};

[[nodiscard]] const char* to_string(UvError e);

class BitVectorSet {
public:
    /// Register a newly-connected block's outputs (all unspent).
    void insert_block(std::uint32_t height, std::uint32_t output_count);

    /// UV check only: is the output at `position` (absolute, block-wide)
    /// still unspent?
    [[nodiscard]] util::Status<UvError> check_unspent(std::uint32_t height,
                                                      std::uint32_t position) const;

    /// Mark spent (block-storage step). Deletes the vector when it empties.
    util::Status<UvError> spend(std::uint32_t height, std::uint32_t position);

    /// Reorg support: set a bit back to unspent. `vector_size` recreates
    /// the vector if it had been deleted as fully spent (all other bits are
    /// then provably zero). Returns false if the bit was already set.
    bool unspend(std::uint32_t height, std::uint32_t position, std::uint32_t vector_size);

    /// Reorg support: drop the vector of a disconnected block entirely.
    void remove_block(std::uint32_t height);

    [[nodiscard]] std::size_t vector_count() const { return vectors_.size(); }
    [[nodiscard]] bool has_vector(std::uint32_t height) const {
        return vectors_.count(height) != 0;
    }

    /// Current memory requirement with the sparse-vector optimization
    /// (Fig 14 "EBV").
    [[nodiscard]] std::size_t memory_bytes() const { return optimized_bytes_; }
    /// Memory if every vector stayed a dense bitmap (Fig 14 "EBV w/o
    /// optimization").
    [[nodiscard]] std::size_t dense_memory_bytes() const { return dense_bytes_; }

    /// Snapshot persistence (one record per surviving vector).
    void save(const std::string& path) const;
    static util::Result<BitVectorSet, util::DecodeError> load(const std::string& path);

    /// In-stream forms (used by node-level snapshots).
    void serialize(util::Writer& w) const;
    static util::Result<BitVectorSet, util::DecodeError> deserialize(util::Reader& r);

    friend bool operator==(const BitVectorSet&, const BitVectorSet&);

private:
    void account_remove(const BitVector& v);
    void account_add(const BitVector& v);

    std::unordered_map<std::uint32_t, BitVector> vectors_;
    std::size_t optimized_bytes_ = 0;
    std::size_t dense_bytes_ = 0;
};

}  // namespace ebv::core
