// The EBV block-validation pipeline (paper §IV-D): per input,
//   EV — fold the Merkle branch from the ELs leaf and compare against the
//        stored header's root at the claimed height;
//   UV — test the bit at the input's absolute position in the bit-vector
//        set (absolute = authenticated stake position + relative index);
//   SV — run Us against the locking script inside ELs.
// No step touches the disk: headers and bit-vectors are memory-resident and
// the proof data arrives with the transaction. Block storage then updates
// the bit-vector set (§IV-E).
#pragma once

#include <cstdint>
#include <string>

#include "chain/header_index.hpp"
#include "chain/params.hpp"
#include "core/bitvector_set.hpp"
#include "core/ebv_transaction.hpp"
#include "script/interpreter.hpp"
#include "util/result.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ebv::core {

enum class EbvError {
    kEmptyBlock,
    kFirstTxNotCoinbase,
    kUnexpectedCoinbase,
    kMissingInputs,
    kMerkleRootMismatch,
    kBadStakePosition,   ///< miner-assigned stake positions inconsistent
    kTooManyOutputs,
    kUnknownHeight,      ///< EV: input references a height beyond the chain
    kExistenceFailed,    ///< EV: Merkle branch does not reach the stored root
    kBadOutIndex,        ///< claimed output index not present in ELs
    kUnspentFailed,      ///< UV: bit already 0 (or vector gone)
    kDoubleSpendInBlock,
    kImmatureCoinbaseSpend,
    kValueOutOfRange,
    kNegativeFee,
    kCoinbaseValueTooHigh,
    kScriptFailure,      ///< SV failed
};

[[nodiscard]] const char* to_string(EbvError e);

struct EbvValidationFailure {
    EbvError error;
    std::size_t tx_index = 0;
    std::size_t input_index = 0;
    script::ScriptError script_error = script::ScriptError::kOk;

    [[nodiscard]] std::string describe() const;
};

/// Per-block timing breakdown, the unit of Figs 15/16b/17b. `update` is the
/// bit-vector maintenance of block storage; figures fold it into "others".
struct EbvTimings {
    util::TimeCost ev;
    util::TimeCost uv;
    util::TimeCost sv;
    util::TimeCost update;
    util::TimeCost other;
    std::size_t inputs = 0;
    std::size_t outputs = 0;

    [[nodiscard]] util::TimeCost total() const { return ev + uv + sv + update + other; }
    [[nodiscard]] util::TimeCost others_combined() const { return update + other; }

    EbvTimings& operator+=(const EbvTimings& o) {
        ev += o.ev;
        uv += o.uv;
        sv += o.sv;
        update += o.update;
        other += o.other;
        inputs += o.inputs;
        outputs += o.outputs;
        return *this;
    }
};

struct EbvValidatorOptions {
    bool verify_scripts = true;
    util::ThreadPool* script_pool = nullptr;
};

/// SignatureChecker binding the script VM to EBV's signature-hash rules.
class EbvSignatureChecker final : public script::SignatureChecker {
public:
    EbvSignatureChecker(const EbvTransaction& tx, std::size_t input_index)
        : tx_(tx), input_index_(input_index) {}

    [[nodiscard]] bool check_signature(util::ByteSpan signature, util::ByteSpan pubkey,
                                       util::ByteSpan script_code) const override;

private:
    const EbvTransaction& tx_;
    std::size_t input_index_;
};

class EbvValidator {
public:
    EbvValidator(const chain::ChainParams& params, const chain::HeaderIndex& headers,
                 BitVectorSet& status, EbvValidatorOptions options = {})
        : params_(params), headers_(headers), status_(status), options_(options) {}

    /// Validate the block at `height` and, on success, apply it to the
    /// bit-vector set. The set is untouched on failure. Publishes per-stage
    /// histograms and per-block counters under `ebv.block.*` and emits one
    /// span per stage (see docs/OBSERVABILITY.md).
    util::Result<EbvTimings, EbvValidationFailure> connect_block(const EbvBlock& block,
                                                                 std::uint32_t height);

private:
    util::Result<EbvTimings, EbvValidationFailure> connect_block_impl(
        const EbvBlock& block, std::uint32_t height);

    const chain::ChainParams& params_;
    const chain::HeaderIndex& headers_;
    BitVectorSet& status_;
    EbvValidatorOptions options_;
};

}  // namespace ebv::core
