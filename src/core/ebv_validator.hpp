// The EBV block-validation pipeline (paper §IV-D): per input,
//   EV — fold the Merkle branch from the ELs leaf and compare against the
//        stored header's root at the claimed height;
//   UV — test the bit at the input's absolute position in the bit-vector
//        set (absolute = authenticated stake position + relative index);
//   SV — run Us against the locking script inside ELs.
// No step touches the disk: headers and bit-vectors are memory-resident and
// the proof data arrives with the transaction. Block storage then updates
// the bit-vector set (§IV-E).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "chain/header_index.hpp"
#include "chain/params.hpp"
#include "core/bitvector_set.hpp"
#include "core/ebv_transaction.hpp"
#include "core/sighash_cache.hpp"
#include "script/interpreter.hpp"
#include "util/result.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ebv::core {

class SigCache;

enum class EbvError {
    kEmptyBlock,
    kFirstTxNotCoinbase,
    kUnexpectedCoinbase,
    kMissingInputs,
    kMerkleRootMismatch,
    kBadStakePosition,   ///< miner-assigned stake positions inconsistent
    kTooManyOutputs,
    kUnknownHeight,      ///< EV: input references a height beyond the chain
    kExistenceFailed,    ///< EV: Merkle branch does not reach the stored root
    kBadOutIndex,        ///< claimed output index not present in ELs
    kUnspentFailed,      ///< UV: bit already 0 (or vector gone)
    kDoubleSpendInBlock,
    kImmatureCoinbaseSpend,
    kValueOutOfRange,
    kNegativeFee,
    kCoinbaseValueTooHigh,
    kScriptFailure,      ///< SV failed
};

[[nodiscard]] const char* to_string(EbvError e);

struct EbvValidationFailure {
    EbvError error;
    std::size_t tx_index = 0;
    std::size_t input_index = 0;
    script::ScriptError script_error = script::ScriptError::kOk;

    [[nodiscard]] std::string describe() const;

    friend bool operator==(const EbvValidationFailure&,
                           const EbvValidationFailure&) = default;
};

// ---- Shared per-input / per-block checks -----------------------------------
// The serial validator below and the inter-block IBD pipeline (`ebv::ibd`)
// run exactly these checks; sharing them is what makes "pipelined rejects
// identically to serial" a structural property rather than a test-enforced
// coincidence.

/// Per-input Existence Validation verdict, recorded out of order by the
/// parallel pass and resolved in input order afterwards.
enum class EvStatus : std::uint8_t { kOk, kUnknownHeight, kBadOutIndex, kExistenceFailed };

/// Map a non-kOk EV verdict to the error a serial pipeline reports.
[[nodiscard]] EbvError to_ebv_error(EvStatus status);

/// EV for one input: the spent output must live in a block strictly below
/// `spending_height` whose stored Merkle root the carried branch folds to.
/// `header` is the caller-resolved header at `in.height` (nullptr = none —
/// callers validating against pending, not-yet-committed blocks resolve
/// in-window heights from their own lookahead state).
[[nodiscard]] EvStatus ev_check_input(const EbvInput& in, const chain::BlockHeader* header,
                                      std::uint32_t spending_height);

/// SV for one input. The caller guarantees the input passed EV (so
/// out_index is in range). `cache` optionally shares the transaction's
/// sighash template across inputs (nullptr = naive per-call serialization);
/// `sigcache` optionally short-circuits signatures already verified at
/// mempool admission (docs/MEMPOOL.md).
[[nodiscard]] script::ScriptError sv_check_input(const EbvTransaction& tx,
                                                 std::size_t input_index,
                                                 const TxSighashCache* cache = nullptr,
                                                 SigCache* sigcache = nullptr);

/// The stateless structural pass: coinbase shape, stake-position
/// assignment, output-value ranges, and the block's own Merkle root.
/// Returns the failure a serial connect_block would report, or nullopt.
[[nodiscard]] std::optional<EbvValidationFailure> check_block_structure(
    const EbvBlock& block, const chain::ChainParams& params);

/// Per-block timing breakdown, the unit of Figs 15/16b/17b. `update` is the
/// bit-vector maintenance of block storage; figures fold it into "others".
struct EbvTimings {
    util::TimeCost ev;
    util::TimeCost uv;
    util::TimeCost sv;
    util::TimeCost update;
    util::TimeCost other;
    std::size_t inputs = 0;
    std::size_t outputs = 0;

    [[nodiscard]] util::TimeCost total() const { return ev + uv + sv + update + other; }
    [[nodiscard]] util::TimeCost others_combined() const { return update + other; }

    EbvTimings& operator+=(const EbvTimings& o) {
        ev += o.ev;
        uv += o.uv;
        sv += o.sv;
        update += o.update;
        other += o.other;
        inputs += o.inputs;
        outputs += o.outputs;
        return *this;
    }
};

struct EbvValidatorOptions {
    bool verify_scripts = true;
    util::ThreadPool* script_pool = nullptr;
    /// Deferred batched ECDSA verification for the fused EV+SV pass (see
    /// docs/CRYPTO.md). nullopt defers to the EBV_BATCH_VERIFY environment
    /// knob (off when unset); an explicit value always wins over the env.
    std::optional<bool> batch_verify;
    /// O(n) per-transaction sighash templates for SV (docs/CRYPTO.md).
    /// nullopt defers to the EBV_SIGHASH_TEMPLATE environment knob (ON when
    /// unset); an explicit value always wins over the env.
    std::optional<bool> sighash_template;
    /// Shared signature-verification cache: signatures the mempool already
    /// verified at admission short-circuit SV here (docs/MEMPOOL.md).
    /// nullptr = every signature pays the full curve check.
    SigCache* sigcache = nullptr;
};

/// Resolve the tri-state batch_verify option against EBV_BATCH_VERIFY.
[[nodiscard]] bool batch_verify_enabled(const EbvValidatorOptions& options);

/// Resolve the tri-state sighash_template option against
/// EBV_SIGHASH_TEMPLATE (default ON).
[[nodiscard]] bool sighash_template_enabled(const EbvValidatorOptions& options);

/// SignatureChecker binding the script VM to EBV's signature-hash rules.
class EbvSignatureChecker final : public script::SignatureChecker {
public:
    EbvSignatureChecker(const EbvTransaction& tx, std::size_t input_index,
                        const TxSighashCache* cache = nullptr,
                        SigCache* sigcache = nullptr)
        : tx_(tx), input_index_(input_index), cache_(cache), sigcache_(sigcache) {}

    [[nodiscard]] bool check_signature(util::ByteSpan signature, util::ByteSpan pubkey,
                                       util::ByteSpan script_code) const override;

    /// The deferred-mode twin of check_signature: same parse-time rejects
    /// (DER strictness, SIGHASH_ALL only, compressed-key parse), but the
    /// curve work is left to crypto::verify_batch.
    [[nodiscard]] std::optional<crypto::VerifyJob> prepare_signature(
        util::ByteSpan signature, util::ByteSpan pubkey,
        util::ByteSpan script_code) const override;

private:
    const EbvTransaction& tx_;
    std::size_t input_index_;
    const TxSighashCache* cache_;
    SigCache* sigcache_;
};

class EbvValidator {
public:
    EbvValidator(const chain::ChainParams& params, const chain::HeaderIndex& headers,
                 BitVectorSet& status, EbvValidatorOptions options = {})
        : params_(params), headers_(headers), status_(status), options_(options) {}

    /// Validate the block at `height` and, on success, apply it to the
    /// bit-vector set. The set is untouched on failure. Publishes per-stage
    /// histograms and per-block counters under `ebv.block.*` and emits one
    /// span per stage (see docs/OBSERVABILITY.md).
    util::Result<EbvTimings, EbvValidationFailure> connect_block(const EbvBlock& block,
                                                                 std::uint32_t height);

private:
    util::Result<EbvTimings, EbvValidationFailure> connect_block_impl(
        const EbvBlock& block, std::uint32_t height);

    const chain::ChainParams& params_;
    const chain::HeaderIndex& headers_;
    BitVectorSet& status_;
    EbvValidatorOptions options_;
};

}  // namespace ebv::core
