#include "core/chain_archive.hpp"

#include "util/assert.hpp"

namespace ebv::core {

void ChainArchive::add_block(const EbvBlock& block) {
    BlockEntry entry;
    entry.tidies.reserve(block.txs.size());
    entry.leaves.reserve(block.txs.size());
    for (const auto& tx : block.txs) {
        entry.tidies.push_back(tx.tidy());
        entry.leaves.push_back(entry.tidies.back().leaf_hash());
        memory_bytes_ += entry.tidies.back().serialized_size() + 32;
    }
    blocks_.push_back(std::move(entry));
}

const TidyTransaction& ChainArchive::tidy(std::uint32_t height,
                                          std::uint32_t tx_index) const {
    EBV_EXPECTS(height < blocks_.size());
    EBV_EXPECTS(tx_index < blocks_[height].tidies.size());
    return blocks_[height].tidies[tx_index];
}

crypto::MerkleBranch ChainArchive::branch(std::uint32_t height,
                                          std::uint32_t tx_index) const {
    EBV_EXPECTS(height < blocks_.size());
    EBV_EXPECTS(tx_index < blocks_[height].leaves.size());
    return crypto::merkle_branch(blocks_[height].leaves, tx_index);
}

EbvInput ChainArchive::make_input(std::uint32_t height, std::uint32_t tx_index,
                                  std::uint16_t out_index) const {
    EbvInput in;
    in.height = height;
    in.out_index = out_index;
    in.els = tidy(height, tx_index);
    EBV_EXPECTS(out_index < in.els.outputs.size());
    in.mbr = branch(height, tx_index);
    return in;
}

}  // namespace ebv::core
