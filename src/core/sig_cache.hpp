// Sharded signature-verification cache (Bitcoin Core's "sigcache" trick):
// a successful ECDSA verification performed at mempool admission is recorded
// here so block validation of the same (sighash, pubkey, signature) triple
// can skip the ~50 µs curve work and pay only a hash + a shard lookup —
// cache-hit SV approaches UV-only cost.
//
// Keying and salting: the cache stores SHA-256(salt || sighash || pubkey ||
// r || s) rather than the raw triple. The 32-byte salt is drawn once per
// cache from std::random_device, so an attacker who can submit transactions
// cannot predict bucket placement or manufacture colliding keys.
//
// Soundness: only triples that verified TRUE are ever inserted, so a hit is
// always a sound "valid" verdict and a miss simply falls back to inline
// verification. Failed signatures are re-verified every time — which is why
// the scenario-matrix failure tuples are bit-identical with the cache on,
// off, or mid-eviction (docs/MEMPOOL.md).
//
// Concurrency: N-way sharded by key prefix with one mutex per shard; safe
// for concurrent contains()/insert() from thread-pool workers. Eviction is
// per-shard FIFO (insertion order) under a global byte budget
// (EBV_SIGCACHE_BYTES) split evenly across shards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_set>

#include "crypto/batch_verify.hpp"
#include "crypto/hash_types.hpp"

namespace ebv::core {

class SigCache {
public:
    /// Approximate resident cost of one cached entry: the 32-byte key plus
    /// hash-set node, bucket-array share, and FIFO-queue bookkeeping.
    static constexpr std::size_t kEntryCostBytes = 96;
    static constexpr std::size_t kShardCount = 16;  // power of two
    static constexpr std::size_t kDefaultMaxBytes = 32u << 20;

    /// `max_bytes` caps resident size (0 = unlimited). The EBV_SIGCACHE_BYTES
    /// environment variable, when set, overrides the argument.
    explicit SigCache(std::size_t max_bytes = kDefaultMaxBytes);

    SigCache(const SigCache&) = delete;
    SigCache& operator=(const SigCache&) = delete;

    /// True iff this exact (sighash, pubkey, signature) triple was
    /// previously insert()ed and has not been evicted.
    [[nodiscard]] bool contains(const crypto::VerifyJob& job) const;

    /// Record a triple that verified TRUE. Never call with a failed
    /// verification — a hit short-circuits the curve check entirely.
    void insert(const crypto::VerifyJob& job);

    /// Drop one triple (e.g. targeted eviction in tests). Returns true if
    /// the entry was present.
    bool erase(const crypto::VerifyJob& job);

    /// Drop everything (the salt is kept).
    void clear();

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t bytes() const { return size() * kEntryCostBytes; }
    [[nodiscard]] std::size_t max_bytes() const { return max_bytes_; }

private:
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_set<crypto::Hash256, crypto::Hash256Hasher> keys;
        std::deque<crypto::Hash256> order;  ///< FIFO eviction queue
    };

    [[nodiscard]] crypto::Hash256 key_for(const crypto::VerifyJob& job) const;
    [[nodiscard]] Shard& shard_for(const crypto::Hash256& key) const;

    crypto::Hash256 salt_;
    std::size_t max_bytes_ = 0;
    std::size_t shard_entry_cap_ = 0;  ///< derived per-shard entry limit (0 = none)
    mutable Shard shards_[kShardCount];
};

}  // namespace ebv::core
