#include "core/bitvector_set.hpp"

#include <cstdio>
#include <memory>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace ebv::core {

const char* to_string(UvError e) {
    switch (e) {
        case UvError::kUnknownHeight: return "no bit-vector for height";
        case UvError::kIndexOutOfRange: return "position out of range";
        case UvError::kAlreadySpent: return "output already spent";
    }
    return "unknown UV error";
}

void BitVectorSet::account_remove(Shard& s, const BitVector& v) {
    s.optimized_bytes -= v.memory_bytes();
    s.dense_bytes -= v.dense_memory_bytes();
}

void BitVectorSet::account_add(Shard& s, const BitVector& v) {
    s.optimized_bytes += v.memory_bytes();
    s.dense_bytes += v.dense_memory_bytes();
}

void BitVectorSet::insert_block(std::uint32_t height, std::uint32_t output_count) {
    Shard& shard = shards_[shard_of(height)];
    EBV_EXPECTS(shard.vectors.count(height) == 0);
    auto [it, inserted] = shard.vectors.emplace(height, BitVector::all_ones(output_count));
    EBV_ASSERT(inserted);
    account_add(shard, it->second);
}

util::Status<UvError> BitVectorSet::check_unspent(std::uint32_t height,
                                                  std::uint32_t position) const {
    const Shard& shard = shards_[shard_of(height)];
    const auto it = shard.vectors.find(height);
    if (it == shard.vectors.end()) return util::Unexpected{UvError::kUnknownHeight};
    if (position >= it->second.size()) return util::Unexpected{UvError::kIndexOutOfRange};
    if (!it->second.test(position)) return util::Unexpected{UvError::kAlreadySpent};
    return util::Ok{};
}

util::Status<UvError> BitVectorSet::spend(std::uint32_t height, std::uint32_t position) {
    Shard& shard = shards_[shard_of(height)];
    const auto it = shard.vectors.find(height);
    if (it == shard.vectors.end()) return util::Unexpected{UvError::kUnknownHeight};
    if (position >= it->second.size()) return util::Unexpected{UvError::kIndexOutOfRange};

    account_remove(shard, it->second);
    const bool was_set = it->second.reset(position);
    if (!was_set) {
        account_add(shard, it->second);
        return util::Unexpected{UvError::kAlreadySpent};
    }
    if (it->second.none()) {
        shard.vectors.erase(it);  // §IV-E1: fully-spent vectors are deleted
    } else {
        account_add(shard, it->second);
    }
    return util::Ok{};
}

void BitVectorSet::spend_shard(std::size_t shard_index, const SpentRecord* records,
                               std::size_t count) {
    Shard& shard = shards_[shard_index];
    for (std::size_t i = 0; i < count; ++i) {
        const SpentRecord& rec = records[i];
        EBV_EXPECTS(shard_of(rec.height) == shard_index);
        const auto it = shard.vectors.find(rec.height);
        EBV_ASSERT(it != shard.vectors.end());  // UV validated this spend
        EBV_ASSERT(rec.position < it->second.size());
        account_remove(shard, it->second);
        const bool was_set = it->second.reset(rec.position);
        EBV_ASSERT(was_set);
        if (it->second.none()) {
            shard.vectors.erase(it);
        } else {
            account_add(shard, it->second);
        }
    }
}

void BitVectorSet::spend_batch(const std::vector<SpentRecord>& spends,
                               util::ThreadPool* pool) {
    std::array<std::vector<SpentRecord>, kShardCount> by_shard;
    for (const SpentRecord& rec : spends) by_shard[shard_of(rec.height)].push_back(rec);

    std::array<std::size_t, kShardCount> active{};
    std::size_t active_count = 0;
    for (std::size_t s = 0; s < kShardCount; ++s)
        if (!by_shard[s].empty()) active[active_count++] = s;

    const auto apply = [&](std::size_t i) {
        const std::size_t s = active[i];
        spend_shard(s, by_shard[s].data(), by_shard[s].size());
    };
    if (pool != nullptr) {
        pool->parallel_for(active_count, apply);
    } else {
        for (std::size_t i = 0; i < active_count; ++i) apply(i);
    }
}

bool BitVectorSet::unspend(std::uint32_t height, std::uint32_t position,
                           std::uint32_t vector_size) {
    Shard& shard = shards_[shard_of(height)];
    auto it = shard.vectors.find(height);
    if (it == shard.vectors.end()) {
        // The vector was deleted as fully spent: recreate it all-zero.
        it = shard.vectors.emplace(height, BitVector::all_zeros(vector_size)).first;
        account_add(shard, it->second);
    }
    if (position >= it->second.size()) return false;

    account_remove(shard, it->second);
    const bool was_clear = it->second.set(position);
    account_add(shard, it->second);
    return was_clear;
}

void BitVectorSet::remove_block(std::uint32_t height) {
    Shard& shard = shards_[shard_of(height)];
    const auto it = shard.vectors.find(height);
    if (it == shard.vectors.end()) return;
    account_remove(shard, it->second);
    shard.vectors.erase(it);
}

std::size_t BitVectorSet::vector_count() const {
    std::size_t count = 0;
    for (const Shard& s : shards_) count += s.vectors.size();
    return count;
}

std::size_t BitVectorSet::memory_bytes() const {
    std::size_t bytes = 0;
    for (const Shard& s : shards_) bytes += s.optimized_bytes;
    return bytes;
}

std::size_t BitVectorSet::dense_memory_bytes() const {
    std::size_t bytes = 0;
    for (const Shard& s : shards_) bytes += s.dense_bytes;
    return bytes;
}

void BitVectorSet::serialize(util::Writer& w) const {
    w.u64(vector_count());
    for (const Shard& shard : shards_) {
        for (const auto& [height, vector] : shard.vectors) {
            w.u32(height);
            vector.serialize(w);
        }
    }
}

util::Result<BitVectorSet, util::DecodeError> BitVectorSet::deserialize(util::Reader& r) {
    auto count = r.u64();
    if (!count) return util::Unexpected{count.error()};

    BitVectorSet set;
    for (std::uint64_t i = 0; i < *count; ++i) {
        auto height = r.u32();
        if (!height) return util::Unexpected{height.error()};
        auto vector = BitVector::deserialize(r);
        if (!vector) return util::Unexpected{vector.error()};
        Shard& shard = set.shards_[shard_of(*height)];
        account_add(shard, *vector);
        shard.vectors.emplace(*height, std::move(*vector));
    }
    return set;
}

void BitVectorSet::save(const std::string& path) const {
    util::Writer w;
    serialize(w);

    std::FILE* f = std::fopen(path.c_str(), "wb");
    EBV_ENSURES(f != nullptr);
    const auto& data = w.data();
    EBV_ASSERT(std::fwrite(data.data(), 1, data.size(), f) == data.size());
    std::fclose(f);
}

util::Result<BitVectorSet, util::DecodeError> BitVectorSet::load(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return util::Unexpected{util::DecodeError::kTruncated};
    std::fseek(f, 0, SEEK_END);
    const long file_size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    util::Bytes data(static_cast<std::size_t>(file_size));
    const bool read_ok = std::fread(data.data(), 1, data.size(), f) == data.size();
    std::fclose(f);
    if (!read_ok) return util::Unexpected{util::DecodeError::kTruncated};

    util::Reader r(data);
    return deserialize(r);
}

bool operator==(const BitVectorSet& a, const BitVectorSet& b) {
    for (std::size_t s = 0; s < BitVectorSet::kShardCount; ++s)
        if (a.shards_[s].vectors != b.shards_[s].vectors) return false;
    return true;
}

}  // namespace ebv::core
