#include "core/bitvector_set.hpp"

#include <cstdio>
#include <memory>

#include "util/assert.hpp"

namespace ebv::core {

const char* to_string(UvError e) {
    switch (e) {
        case UvError::kUnknownHeight: return "no bit-vector for height";
        case UvError::kIndexOutOfRange: return "position out of range";
        case UvError::kAlreadySpent: return "output already spent";
    }
    return "unknown UV error";
}

void BitVectorSet::account_remove(const BitVector& v) {
    optimized_bytes_ -= v.memory_bytes();
    dense_bytes_ -= v.dense_memory_bytes();
}

void BitVectorSet::account_add(const BitVector& v) {
    optimized_bytes_ += v.memory_bytes();
    dense_bytes_ += v.dense_memory_bytes();
}

void BitVectorSet::insert_block(std::uint32_t height, std::uint32_t output_count) {
    EBV_EXPECTS(vectors_.count(height) == 0);
    auto [it, inserted] = vectors_.emplace(height, BitVector::all_ones(output_count));
    EBV_ASSERT(inserted);
    account_add(it->second);
}

util::Status<UvError> BitVectorSet::check_unspent(std::uint32_t height,
                                                  std::uint32_t position) const {
    const auto it = vectors_.find(height);
    if (it == vectors_.end()) return util::Unexpected{UvError::kUnknownHeight};
    if (position >= it->second.size()) return util::Unexpected{UvError::kIndexOutOfRange};
    if (!it->second.test(position)) return util::Unexpected{UvError::kAlreadySpent};
    return util::Ok{};
}

util::Status<UvError> BitVectorSet::spend(std::uint32_t height, std::uint32_t position) {
    const auto it = vectors_.find(height);
    if (it == vectors_.end()) return util::Unexpected{UvError::kUnknownHeight};
    if (position >= it->second.size()) return util::Unexpected{UvError::kIndexOutOfRange};

    account_remove(it->second);
    const bool was_set = it->second.reset(position);
    if (!was_set) {
        account_add(it->second);
        return util::Unexpected{UvError::kAlreadySpent};
    }
    if (it->second.none()) {
        vectors_.erase(it);  // §IV-E1: fully-spent vectors are deleted
    } else {
        account_add(it->second);
    }
    return util::Ok{};
}

bool BitVectorSet::unspend(std::uint32_t height, std::uint32_t position,
                           std::uint32_t vector_size) {
    auto it = vectors_.find(height);
    if (it == vectors_.end()) {
        // The vector was deleted as fully spent: recreate it all-zero.
        it = vectors_.emplace(height, BitVector::all_zeros(vector_size)).first;
        account_add(it->second);
    }
    if (position >= it->second.size()) return false;

    account_remove(it->second);
    const bool was_clear = it->second.set(position);
    account_add(it->second);
    return was_clear;
}

void BitVectorSet::remove_block(std::uint32_t height) {
    const auto it = vectors_.find(height);
    if (it == vectors_.end()) return;
    account_remove(it->second);
    vectors_.erase(it);
}

void BitVectorSet::serialize(util::Writer& w) const {
    w.u64(vectors_.size());
    for (const auto& [height, vector] : vectors_) {
        w.u32(height);
        vector.serialize(w);
    }
}

util::Result<BitVectorSet, util::DecodeError> BitVectorSet::deserialize(util::Reader& r) {
    auto count = r.u64();
    if (!count) return util::Unexpected{count.error()};

    BitVectorSet set;
    for (std::uint64_t i = 0; i < *count; ++i) {
        auto height = r.u32();
        if (!height) return util::Unexpected{height.error()};
        auto vector = BitVector::deserialize(r);
        if (!vector) return util::Unexpected{vector.error()};
        set.account_add(*vector);
        set.vectors_.emplace(*height, std::move(*vector));
    }
    return set;
}

void BitVectorSet::save(const std::string& path) const {
    util::Writer w;
    serialize(w);

    std::FILE* f = std::fopen(path.c_str(), "wb");
    EBV_ENSURES(f != nullptr);
    const auto& data = w.data();
    EBV_ASSERT(std::fwrite(data.data(), 1, data.size(), f) == data.size());
    std::fclose(f);
}

util::Result<BitVectorSet, util::DecodeError> BitVectorSet::load(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return util::Unexpected{util::DecodeError::kTruncated};
    std::fseek(f, 0, SEEK_END);
    const long file_size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    util::Bytes data(static_cast<std::size_t>(file_size));
    const bool read_ok = std::fread(data.data(), 1, data.size(), f) == data.size();
    std::fclose(f);
    if (!read_ok) return util::Unexpected{util::DecodeError::kTruncated};

    util::Reader r(data);
    return deserialize(r);
}

bool operator==(const BitVectorSet& a, const BitVectorSet& b) {
    return a.vectors_ == b.vectors_;
}

}  // namespace ebv::core
