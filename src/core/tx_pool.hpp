// Standalone EBV transaction validation and a mempool (paper §IV-D: "After
// receiving a transaction, a node has to validate the legitimacy of this
// transaction"). Admission runs the same EV/UV/SV pipeline as block
// validation — against the *current* chain state plus the pool's own
// pending spends, so conflicting transactions are rejected at the door.
//
// One EBV-specific caveat handled here: a transaction in the pool proves
// existence against a block that is already final, so proofs never go stale
// when new blocks arrive — only UV can change (the output being spent by a
// confirmed block), which eviction re-checks.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/header_index.hpp"
#include "chain/params.hpp"
#include "core/bitvector_set.hpp"
#include "core/ebv_transaction.hpp"
#include "core/ebv_validator.hpp"

namespace ebv::core {

enum class TxAdmission {
    kAccepted,
    kDuplicate,           ///< same leaf hash already pooled
    kConflict,            ///< spends an output a pooled transaction spends
    kExistenceFailed,     ///< EV failed (incl. unknown height / bad index)
    kUnspentFailed,       ///< UV failed against the chain state
    kImmatureCoinbase,
    kBadValue,            ///< outputs exceed inputs or out of range
    kScriptFailed,        ///< SV failed
    kNotStandalone,       ///< coinbase transactions are never pooled
};

[[nodiscard]] const char* to_string(TxAdmission a);

/// Validate one transaction against the chain state (headers + bit-vector
/// set), without touching the state. Exposed standalone so relays can
/// check transactions they do not intend to pool.
TxAdmission validate_transaction(const EbvTransaction& tx,
                                 const chain::ChainParams& params,
                                 const chain::HeaderIndex& headers,
                                 const BitVectorSet& status,
                                 std::uint32_t next_height,
                                 bool verify_scripts = true);

class TxPool {
public:
    TxPool(const chain::ChainParams& params, const chain::HeaderIndex& headers,
           const BitVectorSet& status)
        : params_(params), headers_(headers), status_(status) {}

    /// Validate and admit a transaction.
    TxAdmission submit(const EbvTransaction& tx);

    /// Drain up to max_txs transactions for block packaging, highest
    /// fee-per-byte first. Drained transactions leave the pool.
    std::vector<EbvTransaction> take_for_block(std::size_t max_txs);

    /// Drop every pooled transaction whose inputs were consumed by the
    /// newly connected chain state (call after each block). Returns the
    /// number evicted.
    std::size_t evict_confirmed_spends();

    [[nodiscard]] std::size_t size() const { return pool_.size(); }
    [[nodiscard]] bool contains(const crypto::Hash256& leaf_hash) const {
        return pool_.count(leaf_hash) != 0;
    }

private:
    TxAdmission submit_internal(const EbvTransaction& tx);

    struct SpentKeyHasher {
        std::size_t operator()(const std::uint64_t& k) const {
            return std::hash<std::uint64_t>{}(k);
        }
    };
    static std::uint64_t spend_key(std::uint32_t height, std::uint32_t position) {
        return static_cast<std::uint64_t>(height) << 32 | position;
    }

    struct Entry {
        EbvTransaction tx;
        chain::Amount fee = 0;
        std::size_t bytes = 0;
    };

    const chain::ChainParams& params_;
    const chain::HeaderIndex& headers_;
    const BitVectorSet& status_;

    std::unordered_map<crypto::Hash256, Entry, crypto::Hash256Hasher> pool_;
    std::unordered_set<std::uint64_t, SpentKeyHasher> pending_spends_;
};

}  // namespace ebv::core
