// Standalone EBV transaction validation and a mempool (paper §IV-D: "After
// receiving a transaction, a node has to validate the legitimacy of this
// transaction"). Admission runs the same EV/UV/SV pipeline as block
// validation — against the *current* chain state plus the pool's own
// pending spends, so conflicting transactions are rejected at the door.
//
// Heavy-traffic front-end (docs/MEMPOOL.md):
//  - submit_batch() fans the stateless per-transaction work (EV proof
//    folds, sighash templates, SV) over a util::ThreadPool, then resolves
//    verdicts serially in submission order — admission verdicts are
//    bit-identical to one-at-a-time submit() calls on one thread.
//  - A core::SigCache records every signature verified at admission, so
//    validating a block built from the pool skips the curve work and
//    approaches UV-only cost.
//  - Entries are ranked by exact feerate (128-bit cross-multiplied, txid
//    tie-break); take_for_block()/build_template() drain best-first without
//    re-sorting, and a byte budget (EBV_MEMPOOL_BYTES) evicts worst-first.
//  - A conflicting transaction replaces the pooled spenders only when its
//    feerate strictly beats every one of them (replace-by-feerate).
//
// One EBV-specific caveat handled here: a transaction in the pool proves
// existence against a block that is already final, so proofs never go stale
// when new blocks arrive — only UV can change (the output being spent by a
// confirmed block), which eviction re-checks.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "chain/header_index.hpp"
#include "chain/params.hpp"
#include "core/bitvector_set.hpp"
#include "core/ebv_transaction.hpp"
#include "core/ebv_validator.hpp"
#include "core/sig_cache.hpp"
#include "util/thread_pool.hpp"

namespace ebv::core {

enum class TxAdmission {
    kAccepted,
    kDuplicate,           ///< same leaf hash already pooled
    kConflict,            ///< spends an output a pooled transaction spends
    kExistenceFailed,     ///< EV failed (incl. unknown height / bad index)
    kUnspentFailed,       ///< UV failed against the chain state
    kImmatureCoinbase,
    kBadValue,            ///< outputs exceed inputs or out of range
    kScriptFailed,        ///< SV failed
    kNotStandalone,       ///< coinbase transactions are never pooled
    kPoolFull,            ///< valid, but below the budget-eviction feerate floor
};

[[nodiscard]] const char* to_string(TxAdmission a);

/// Validate one transaction against the chain state (headers + bit-vector
/// set), without touching the state. Exposed standalone so relays can
/// check transactions they do not intend to pool. `sigcache`, when given,
/// is consulted for — and warmed by — every signature check.
TxAdmission validate_transaction(const EbvTransaction& tx,
                                 const chain::ChainParams& params,
                                 const chain::HeaderIndex& headers,
                                 const BitVectorSet& status,
                                 std::uint32_t next_height,
                                 bool verify_scripts = true,
                                 SigCache* sigcache = nullptr);

struct TxPoolOptions {
    /// Resident byte budget (0 = unlimited). When an insertion pushes the
    /// pool past it, lowest-feerate entries are evicted — possibly the
    /// newcomer itself (kPoolFull). EBV_MEMPOOL_BYTES, when set in the
    /// environment, overrides this value.
    std::size_t max_bytes = 0;
    /// Fans submit_batch()'s stateless per-transaction validation across
    /// workers; nullptr = serial admission.
    util::ThreadPool* pool = nullptr;
    /// Records admission-verified signatures for block-validation reuse;
    /// typically the same cache handed to EbvValidatorOptions::sigcache.
    SigCache* sigcache = nullptr;
    bool verify_scripts = true;
    /// Allow a conflicting transaction to replace pooled spenders when its
    /// feerate strictly beats every one of them.
    bool replace_by_feerate = true;

    /// Apply EBV_MEMPOOL_BYTES on top of `base`.
    [[nodiscard]] static TxPoolOptions from_env(TxPoolOptions base);
    [[nodiscard]] static TxPoolOptions from_env() { return from_env(TxPoolOptions{}); }
};

class TxPool {
public:
    /// Approximate per-entry overhead (map nodes, rank node, spend index)
    /// added to the serialized size for byte accounting.
    static constexpr std::size_t kEntryOverheadBytes = 160;

    TxPool(const chain::ChainParams& params, const chain::HeaderIndex& headers,
           const BitVectorSet& status, TxPoolOptions options = {})
        : params_(params), headers_(headers), status_(status), options_(options) {}

    /// Validate and admit a transaction.
    TxAdmission submit(const EbvTransaction& tx);

    /// Validate and admit a burst of transactions, fanning the stateless
    /// per-transaction work over options().pool. Verdicts are resolved in
    /// submission order and match serial submit() calls exactly (including
    /// duplicates/conflicts *within* the batch).
    std::vector<TxAdmission> submit_batch(std::span<const EbvTransaction> txs);

    /// Drain up to max_txs transactions for block packaging, highest
    /// fee-per-byte first (exact integer comparison, txid tie-break).
    /// Drained transactions leave the pool.
    std::vector<EbvTransaction> take_for_block(std::size_t max_txs);

    /// Assemble a block template from the pool without draining it: a
    /// coinbase paying subsidy + fees to `coinbase_lock`, then up to
    /// max_txs pooled transactions best-feerate-first, stake positions
    /// assigned and the Merkle root computed. Call evict_confirmed_spends
    /// with the connected block to remove the included transactions.
    [[nodiscard]] EbvBlock build_template(const script::Script& coinbase_lock,
                                          std::size_t max_txs) const;

    /// Drop every pooled transaction whose inputs were consumed by the
    /// newly connected chain state. The block overload walks only the
    /// block's own spends against the pool's spend index (O(spends in
    /// block)); the argument-free overload re-checks the whole pool (use
    /// after reorgs or bulk state changes). Returns the number evicted.
    std::size_t evict_confirmed_spends(const EbvBlock& block);
    std::size_t evict_confirmed_spends();

    [[nodiscard]] std::size_t size() const { return pool_.size(); }
    /// Approximate resident bytes (serialized sizes + per-entry overhead).
    [[nodiscard]] std::size_t bytes() const { return bytes_; }
    [[nodiscard]] bool contains(const crypto::Hash256& leaf_hash) const {
        return pool_.count(leaf_hash) != 0;
    }
    [[nodiscard]] const TxPoolOptions& options() const { return options_; }

private:
    static std::uint64_t spend_key(std::uint32_t height, std::uint32_t position) {
        return static_cast<std::uint64_t>(height) << 32 | position;
    }

    struct Entry {
        EbvTransaction tx;
        chain::Amount fee = 0;
        std::size_t bytes = 0;  ///< serialized size + kEntryOverheadBytes
    };

    /// Feerate rank: an entry's identity in the drain/evict order. Strict
    /// weak ordering via exact 128-bit cross-multiplication — no
    /// double-precision loss — with the leaf hash as a total-order
    /// tie-break so drain order is deterministic.
    struct Rank {
        chain::Amount fee = 0;
        std::uint64_t bytes = 0;
        crypto::Hash256 leaf;
    };
    struct RankBetter {
        bool operator()(const Rank& a, const Rank& b) const {
            const auto lhs = static_cast<unsigned __int128>(a.fee) * b.bytes;
            const auto rhs = static_cast<unsigned __int128>(b.fee) * a.bytes;
            if (lhs != rhs) return lhs > rhs;  // higher feerate first
            return a.leaf < b.leaf;
        }
    };

    /// Stateless per-transaction verdicts, computed (possibly in parallel)
    /// before the serial resolution pass.
    struct Prevalidation;

    [[nodiscard]] bool feerate_beats(const Entry& a, const Entry& b) const;
    void prevalidate(const EbvTransaction& tx, Prevalidation& out) const;
    TxAdmission resolve(const EbvTransaction& tx, const Prevalidation& pre);
    void insert_entry(const crypto::Hash256& leaf, Entry entry);
    void erase_entry(const crypto::Hash256& leaf);
    /// Evict lowest-feerate entries until bytes_ fits the budget.
    std::size_t trim_to_budget();

    const chain::ChainParams& params_;
    const chain::HeaderIndex& headers_;
    const BitVectorSet& status_;
    TxPoolOptions options_;

    std::unordered_map<crypto::Hash256, Entry, crypto::Hash256Hasher> pool_;
    /// spend key (height<<32 | absolute position) -> pooled spender's leaf.
    std::unordered_map<std::uint64_t, crypto::Hash256> spends_;
    std::set<Rank, RankBetter> ranked_;
    std::size_t bytes_ = 0;
};

}  // namespace ebv::core
