// Proof-source archive: the per-block tidy transactions and Merkle leaves
// needed to *build* EBV input proofs (MBr + ELs). Validators never need
// this — only proof producers do: the intermediary node of §VI-A and
// wallet-style transaction proposers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ebv_transaction.hpp"

namespace ebv::core {

class ChainArchive {
public:
    /// Record a connected block (height must be sequential from 0).
    void add_block(const EbvBlock& block);

    [[nodiscard]] std::uint32_t height_count() const {
        return static_cast<std::uint32_t>(blocks_.size());
    }
    [[nodiscard]] std::size_t tx_count(std::uint32_t height) const {
        return blocks_[height].tidies.size();
    }

    [[nodiscard]] const TidyTransaction& tidy(std::uint32_t height,
                                              std::uint32_t tx_index) const;

    /// Build the Merkle branch proving tx `tx_index` of block `height`.
    [[nodiscard]] crypto::MerkleBranch branch(std::uint32_t height,
                                              std::uint32_t tx_index) const;

    /// Assemble a complete input body spending output `out_index` of tx
    /// `tx_index` in block `height`. The unlocking script starts empty; the
    /// caller signs and fills it in.
    [[nodiscard]] EbvInput make_input(std::uint32_t height, std::uint32_t tx_index,
                                      std::uint16_t out_index) const;

    /// Approximate resident size (proof producers pay this, not validators).
    [[nodiscard]] std::size_t memory_bytes() const { return memory_bytes_; }

private:
    struct BlockEntry {
        std::vector<TidyTransaction> tidies;
        std::vector<crypto::Hash256> leaves;
    };
    std::vector<BlockEntry> blocks_;
    std::size_t memory_bytes_ = 0;
};

}  // namespace ebv::core
