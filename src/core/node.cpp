#include "core/node.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace ebv::core {

EbvNode::EbvNode(const EbvNodeOptions& options) : options_(options) {
    if (!options.data_dir.empty()) {
        block_store_ = std::make_unique<storage::FlatStore<EbvBlock>>(options.data_dir +
                                                                      "/ebv_blocks.dat");
    }
}

util::Result<EbvTimings, EbvValidationFailure> EbvNode::submit_block(
    const EbvBlock& block) {
    const std::uint32_t height = next_height();
    EbvValidator validator(options_.params, headers_, status_, options_.validator);
    auto result = validator.connect_block(block, height);
    if (!result) return result;

    const bool linked = headers_.append(block.header);
    EBV_ENSURES(linked);
    output_counts_.push_back(static_cast<std::uint32_t>(block.output_count()));
    if (block_store_) block_store_->append(block);
    return result;
}

void EbvNode::save_snapshot(const std::string& path) const {
    util::Writer w;
    w.u32(static_cast<std::uint32_t>(headers_.size()));
    for (std::uint32_t h = 0; h < headers_.size(); ++h) {
        headers_.at(h)->serialize(w);
        w.u32(output_counts_[h]);
    }
    status_.serialize(w);

    std::FILE* f = std::fopen(path.c_str(), "wb");
    EBV_ENSURES(f != nullptr);
    EBV_ASSERT(std::fwrite(w.data().data(), 1, w.size(), f) == w.size());
    std::fclose(f);
}

util::Result<std::unique_ptr<EbvNode>, util::DecodeError> EbvNode::load_snapshot(
    const std::string& path, const EbvNodeOptions& options) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return util::Unexpected{util::DecodeError::kTruncated};
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    util::Bytes data(static_cast<std::size_t>(size));
    const bool read_ok = std::fread(data.data(), 1, data.size(), f) == data.size();
    std::fclose(f);
    if (!read_ok) return util::Unexpected{util::DecodeError::kTruncated};

    util::Reader r(data);
    auto count = r.u32();
    if (!count) return util::Unexpected{count.error()};

    auto node = std::make_unique<EbvNode>(options);
    for (std::uint32_t h = 0; h < *count; ++h) {
        auto header = chain::BlockHeader::deserialize(r);
        if (!header) return util::Unexpected{header.error()};
        auto outputs = r.u32();
        if (!outputs) return util::Unexpected{outputs.error()};
        if (!node->headers_.append(*header))
            return util::Unexpected{util::DecodeError::kMalformed};
        node->output_counts_.push_back(*outputs);
    }

    auto status = BitVectorSet::deserialize(r);
    if (!status) return util::Unexpected{status.error()};
    node->status_ = std::move(*status);
    return node;
}

bool EbvNode::disconnect_tip(const EbvBlock& block) {
    if (headers_.empty()) return false;
    const std::uint32_t tip_height = headers_.height();
    if (block.header.hash() != headers_.tip_hash()) return false;

    // Un-spend every input (skip the coinbase at index 0).
    for (std::size_t t = 1; t < block.txs.size(); ++t) {
        for (const EbvInput& in : block.txs[t].inputs) {
            const bool restored = status_.unspend(in.height, in.absolute_position(),
                                                  output_counts_[in.height]);
            EBV_ASSERT(restored);
        }
    }
    status_.remove_block(tip_height);

    headers_.pop_tip();
    output_counts_.pop_back();
    if (block_store_) block_store_->truncate(tip_height);
    return true;
}

}  // namespace ebv::core
