#include "core/sighash_cache.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "script/interpreter.hpp"
#include "util/serialize.hpp"

namespace ebv::core {

TxSighashCache::TxSighashCache(const EbvTransaction& tx)
    : tx_(tx), tpl_([&] {
          std::size_t size = 4 + util::compact_size_length(tx.inputs.size()) +
                             41 * tx.inputs.size() +
                             util::compact_size_length(tx.outputs.size()) + 4;
          for (const chain::TxOut& out : tx.outputs)
              size += 8 + util::compact_size_length(out.lock_script.size()) +
                      out.lock_script.size();

          chain::SighashTemplate::Builder b(tx.version, tx.inputs.size(),
                                            tx.outputs.size(), size);
          for (const EbvInput& in : tx.inputs) b.add_input(in.prevout, in.sequence);
          b.begin_outputs(tx.outputs.size());
          for (const chain::TxOut& out : tx.outputs) b.add_output(out);
          return b.finish(tx.locktime);
      }()) {
    const std::size_t n = tx.inputs.size();
    standard_.resize(n);
    has_standard_.assign(n, 0);

    // Materialize the standard preimages and hash them in one SIMD batch.
    // Inputs whose claimed out_index is invalid (EV will reject them) or
    // whose lock script is P2SH (the VM hands the checker the redeem
    // script, not this one) are left to the on-demand template path.
    std::vector<util::Bytes> preimages;
    std::vector<util::ByteSpan> spans;
    std::vector<std::size_t> which;
    preimages.reserve(n);
    which.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const EbvInput& in = tx.inputs[i];
        if (in.out_index >= in.els.outputs.size()) continue;
        const script::Script& lock = in.els.outputs[in.out_index].lock_script;
        if (script::is_pay_to_script_hash(lock)) continue;
        preimages.emplace_back();
        tpl_.preimage(i, lock, 0x01, preimages.back());
        which.push_back(i);
    }
    spans.reserve(preimages.size());
    for (const util::Bytes& p : preimages) spans.emplace_back(p.data(), p.size());

    std::vector<crypto::Sha256::Digest> digests(spans.size());
    crypto::sha256d_many(spans.data(), digests.data(), spans.size());
    for (std::size_t k = 0; k < which.size(); ++k) {
        standard_[which[k]] =
            crypto::Hash256::from_span({digests[k].data(), digests[k].size()});
        has_standard_[which[k]] = 1;
    }
}

crypto::Hash256 TxSighashCache::digest(std::size_t input_index, util::ByteSpan script_code,
                                       std::uint8_t hash_type) const {
    bytes_saved_.fetch_add(
        static_cast<std::uint64_t>(tpl_.prefix_skipped(input_index)) +
            tpl_.preimage_size(input_index, script_code),
        std::memory_order_relaxed);

    if (hash_type == 0x01 && has_standard_[input_index]) {
        const EbvInput& in = tx_.inputs[input_index];
        const script::Script& lock = in.els.outputs[in.out_index].lock_script;
        if (script_code.size() == lock.size() &&
            std::equal(script_code.begin(), script_code.end(), lock.begin())) {
            return standard_[input_index];
        }
    }
    return tpl_.digest(input_index, script_code, hash_type);
}

}  // namespace ebv::core
