// Branch switching for the EBV node, mirroring chain/reorg.hpp: disconnect
// the suffix above the fork point (un-spending bits via the stored block
// bodies), connect the competing branch, and roll back on failure.
#pragma once

#include <vector>

#include "core/node.hpp"
#include "util/result.hpp"

namespace ebv::core {

enum class EbvReorgError {
    kNeedsBlockStore,
    kUnknownForkPoint,
    kBranchNotLonger,
    kRollbackFailed,
};

[[nodiscard]] const char* to_string(EbvReorgError e);

struct EbvReorgOutcome {
    std::uint32_t fork_height = 0;
    std::uint32_t blocks_disconnected = 0;
    std::uint32_t blocks_connected = 0;
    bool switched = false;
    EbvValidationFailure branch_failure{};
};

util::Result<EbvReorgOutcome, EbvReorgError> reorg_to(
    EbvNode& node, const std::vector<EbvBlock>& branch);

}  // namespace ebv::core
