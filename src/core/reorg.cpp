#include "core/reorg.hpp"

#include "util/assert.hpp"

namespace ebv::core {

const char* to_string(EbvReorgError e) {
    switch (e) {
        case EbvReorgError::kNeedsBlockStore: return "node has no block store";
        case EbvReorgError::kUnknownForkPoint: return "branch does not attach to the chain";
        case EbvReorgError::kBranchNotLonger: return "branch is not longer than the chain";
        case EbvReorgError::kRollbackFailed: return "rollback failed";
    }
    return "unknown EBV reorg error";
}

util::Result<EbvReorgOutcome, EbvReorgError> reorg_to(
    EbvNode& node, const std::vector<EbvBlock>& branch) {
    if (node.block_store() == nullptr)
        return util::Unexpected{EbvReorgError::kNeedsBlockStore};
    if (branch.empty()) return util::Unexpected{EbvReorgError::kBranchNotLonger};

    const crypto::Hash256& attach = branch[0].header.prev_hash;
    std::uint32_t fork_height_plus_1 = 0;
    if (!attach.is_zero()) {
        const auto found = node.headers().find(attach);
        if (!found) return util::Unexpected{EbvReorgError::kUnknownForkPoint};
        fork_height_plus_1 = *found + 1;
    }

    const std::uint32_t current_height = node.next_height();
    const std::uint32_t branch_tip =
        fork_height_plus_1 + static_cast<std::uint32_t>(branch.size());
    if (branch_tip <= current_height)
        return util::Unexpected{EbvReorgError::kBranchNotLonger};

    std::vector<EbvBlock> original;
    original.reserve(current_height - fork_height_plus_1);
    for (std::uint32_t h = fork_height_plus_1; h < current_height; ++h) {
        auto block = node.block_store()->load(h);
        EBV_ASSERT(block.has_value());
        original.push_back(std::move(*block));
    }

    EbvReorgOutcome outcome;
    outcome.fork_height = fork_height_plus_1 == 0 ? 0 : fork_height_plus_1 - 1;

    // Disconnect the suffix, newest first, using the saved bodies.
    for (auto it = original.rbegin(); it != original.rend(); ++it) {
        const bool ok = node.disconnect_tip(*it);
        EBV_ASSERT(ok);
        ++outcome.blocks_disconnected;
    }

    for (const EbvBlock& block : branch) {
        auto result = node.submit_block(block);
        if (result) {
            ++outcome.blocks_connected;
            continue;
        }
        outcome.branch_failure = result.error();

        // Unwind whatever connected, then restore the original branch.
        for (std::uint32_t h = node.next_height(); h > fork_height_plus_1; --h) {
            auto connected = node.block_store()->load(h - 1);
            if (!connected || !node.disconnect_tip(*connected)) {
                return util::Unexpected{EbvReorgError::kRollbackFailed};
            }
        }
        for (const EbvBlock& old_block : original) {
            if (!node.submit_block(old_block)) {
                return util::Unexpected{EbvReorgError::kRollbackFailed};
            }
        }
        outcome.blocks_disconnected = 0;
        outcome.blocks_connected = 0;
        outcome.switched = false;
        return outcome;
    }

    outcome.switched = true;
    return outcome;
}

}  // namespace ebv::core
