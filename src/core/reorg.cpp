#include "core/reorg.hpp"

#include "util/assert.hpp"

namespace ebv::core {

const char* to_string(EbvReorgError e) {
    switch (e) {
        case EbvReorgError::kNeedsBlockStore: return "node has no block store";
        case EbvReorgError::kUnknownForkPoint: return "branch does not attach to the chain";
        case EbvReorgError::kBranchNotLonger: return "branch is not longer than the chain";
        case EbvReorgError::kRollbackFailed: return "rollback failed";
    }
    return "unknown EBV reorg error";
}

util::Result<EbvReorgOutcome, EbvReorgError> reorg_to(
    EbvNode& node, const std::vector<EbvBlock>& branch) {
    if (node.block_store() == nullptr)
        return util::Unexpected{EbvReorgError::kNeedsBlockStore};
    if (branch.empty()) return util::Unexpected{EbvReorgError::kBranchNotLonger};

    const crypto::Hash256& attach = branch[0].header.prev_hash;
    std::uint32_t fork_height_plus_1 = 0;
    if (!attach.is_zero()) {
        const auto found = node.headers().find(attach);
        if (!found) return util::Unexpected{EbvReorgError::kUnknownForkPoint};
        fork_height_plus_1 = *found + 1;
    }

    const std::uint32_t current_height = node.next_height();
    const std::uint32_t branch_tip =
        fork_height_plus_1 + static_cast<std::uint32_t>(branch.size());
    if (branch_tip <= current_height)
        return util::Unexpected{EbvReorgError::kBranchNotLonger};

    // Load and verify the suffix being replaced *before* touching any
    // state: if the block store cannot reproduce the chain (external
    // truncation or tampering), rolling back a failed branch would be
    // impossible. Refusing up front leaves the node untouched instead of
    // discovering the corruption halfway through a disconnect.
    std::vector<EbvBlock> original;
    original.reserve(current_height - fork_height_plus_1);
    for (std::uint32_t h = fork_height_plus_1; h < current_height; ++h) {
        auto block = node.block_store()->load(h);
        const chain::BlockHeader* expected = node.headers().at(h);
        if (!block || expected == nullptr || block->header.hash() != expected->hash()) {
            return util::Unexpected{EbvReorgError::kRollbackFailed};
        }
        original.push_back(std::move(*block));
    }

    EbvReorgOutcome outcome;
    outcome.fork_height = fork_height_plus_1 == 0 ? 0 : fork_height_plus_1 - 1;

    // Disconnect the suffix, newest first, using the saved bodies.
    for (auto it = original.rbegin(); it != original.rend(); ++it) {
        const bool ok = node.disconnect_tip(*it);
        EBV_ASSERT(ok);
        ++outcome.blocks_disconnected;
    }

    for (const EbvBlock& block : branch) {
        auto result = node.submit_block(block);
        if (result) {
            ++outcome.blocks_connected;
            continue;
        }
        outcome.branch_failure = result.error();

        // Unwind whatever connected using the in-memory branch bodies (the
        // connected blocks are exactly branch[0..connected)), then restore
        // the original suffix. Failures here mean a disconnect/reconnect
        // did not invert exactly — a genuine state bug, not a storage one.
        for (std::uint32_t j = outcome.blocks_connected; j > 0; --j) {
            if (!node.disconnect_tip(branch[j - 1])) {
                return util::Unexpected{EbvReorgError::kRollbackFailed};
            }
        }
        for (const EbvBlock& old_block : original) {
            if (!node.submit_block(old_block)) {
                return util::Unexpected{EbvReorgError::kRollbackFailed};
            }
        }
        outcome.blocks_disconnected = 0;
        outcome.blocks_connected = 0;
        outcome.switched = false;
        return outcome;
    }

    outcome.switched = true;
    return outcome;
}

}  // namespace ebv::core
