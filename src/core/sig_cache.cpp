#include "core/sig_cache.hpp"

#include <cstdlib>
#include <random>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"

namespace ebv::core {

namespace {

/// Registry handles, resolved once (values survive Registry::reset()).
struct SigCacheMetrics {
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& inserts;
    obs::Counter& evictions;
    obs::Gauge& entries;
    obs::Gauge& bytes;

    static SigCacheMetrics& get() {
        static SigCacheMetrics m{
            obs::Registry::global().counter("ebv.sigcache.hits"),
            obs::Registry::global().counter("ebv.sigcache.misses"),
            obs::Registry::global().counter("ebv.sigcache.inserts"),
            obs::Registry::global().counter("ebv.sigcache.evictions"),
            obs::Registry::global().gauge("ebv.sigcache.entries"),
            obs::Registry::global().gauge("ebv.sigcache.bytes"),
        };
        return m;
    }
};

std::size_t resolve_max_bytes(std::size_t fallback) {
    if (const char* env = std::getenv("EBV_SIGCACHE_BYTES")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env) return static_cast<std::size_t>(v);
    }
    return fallback;
}

crypto::Hash256 random_salt() {
    std::random_device rd;
    std::array<std::uint8_t, 32> raw{};
    for (std::size_t i = 0; i < raw.size(); i += 4) {
        const std::uint32_t word = rd();
        raw[i] = static_cast<std::uint8_t>(word);
        raw[i + 1] = static_cast<std::uint8_t>(word >> 8);
        raw[i + 2] = static_cast<std::uint8_t>(word >> 16);
        raw[i + 3] = static_cast<std::uint8_t>(word >> 24);
    }
    return crypto::Hash256::from_span({raw.data(), raw.size()});
}

}  // namespace

SigCache::SigCache(std::size_t max_bytes)
    : salt_(random_salt()), max_bytes_(resolve_max_bytes(max_bytes)) {
    if (max_bytes_ != 0) {
        const std::size_t total_entries = max_bytes_ / kEntryCostBytes;
        shard_entry_cap_ = total_entries / kShardCount;
        if (shard_entry_cap_ == 0) shard_entry_cap_ = 1;
    }
}

crypto::Hash256 SigCache::key_for(const crypto::VerifyJob& job) const {
    // salt || sighash || compressed pubkey (33B) || r || s, hashed to 32B.
    std::uint8_t pub[33];
    pub[0] = job.key.point().y.is_odd() ? 0x03 : 0x02;
    job.key.point().x.to_be_bytes({pub + 1, 32});
    std::uint8_t rs[64];
    job.sig.r.to_be_bytes({rs, 32});
    job.sig.s.to_be_bytes({rs + 32, 32});

    crypto::Sha256 h;
    h.update(salt_.span());
    h.update(job.digest.span());
    h.update({pub, sizeof pub});
    h.update({rs, sizeof rs});
    const crypto::Sha256::Digest d = h.finalize();
    return crypto::Hash256::from_span({d.data(), d.size()});
}

SigCache::Shard& SigCache::shard_for(const crypto::Hash256& key) const {
    return shards_[key.bytes()[0] & (kShardCount - 1)];
}

bool SigCache::contains(const crypto::VerifyJob& job) const {
    const crypto::Hash256 key = key_for(job);
    Shard& shard = shard_for(key);
    bool hit = false;
    {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        hit = shard.keys.count(key) != 0;
    }
    SigCacheMetrics& m = SigCacheMetrics::get();
    if (hit) {
        m.hits.inc();
    } else {
        m.misses.inc();
    }
    return hit;
}

void SigCache::insert(const crypto::VerifyJob& job) {
    const crypto::Hash256 key = key_for(job);
    Shard& shard = shard_for(key);
    std::size_t inserted = 0;
    std::size_t evicted = 0;
    std::int64_t delta = 0;
    {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.keys.insert(key).second) {
            shard.order.push_back(key);
            inserted = 1;
            while (shard_entry_cap_ != 0 && shard.keys.size() > shard_entry_cap_) {
                shard.keys.erase(shard.order.front());
                shard.order.pop_front();
                ++evicted;
            }
        }
        delta = static_cast<std::int64_t>(inserted) - static_cast<std::int64_t>(evicted);
    }
    SigCacheMetrics& m = SigCacheMetrics::get();
    if (inserted) m.inserts.inc();
    if (evicted) m.evictions.inc(evicted);
    if (delta != 0) {
        m.entries.add(delta);
        m.bytes.add(delta * static_cast<std::int64_t>(kEntryCostBytes));
    }
}

bool SigCache::erase(const crypto::VerifyJob& job) {
    const crypto::Hash256 key = key_for(job);
    Shard& shard = shard_for(key);
    bool erased = false;
    {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        erased = shard.keys.erase(key) != 0;
        // Scrub the FIFO slot too, or budget eviction would later pop a
        // key that no longer exists and silently under-evict.
        if (erased) {
            for (auto it = shard.order.begin(); it != shard.order.end(); ++it) {
                if (*it == key) {
                    shard.order.erase(it);
                    break;
                }
            }
        }
    }
    if (erased) {
        SigCacheMetrics& m = SigCacheMetrics::get();
        m.evictions.inc();
        m.entries.add(-1);
        m.bytes.add(-static_cast<std::int64_t>(kEntryCostBytes));
    }
    return erased;
}

void SigCache::clear() {
    std::size_t dropped = 0;
    for (Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        dropped += shard.keys.size();
        shard.keys.clear();
        shard.order.clear();
    }
    if (dropped != 0) {
        SigCacheMetrics& m = SigCacheMetrics::get();
        m.evictions.inc(dropped);
        m.entries.add(-static_cast<std::int64_t>(dropped));
        m.bytes.add(-static_cast<std::int64_t>(dropped * kEntryCostBytes));
    }
}

std::size_t SigCache::size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.keys.size();
    }
    return total;
}

}  // namespace ebv::core
