// Per-transaction sighash cache for EBV Script Validation.
//
// Wraps a chain::SighashTemplate built over the EBV transaction's legacy
// projection (prevouts + sequences + outputs — the bytes signatures commit
// to) and eagerly precomputes the *standard* digest of every input: script
// code = the locking script inside ELs, hash type = SIGHASH_ALL. Those are
// the digests the fused EV+SV pass will ask for on P2PKH spends, and
// because the pass has all of a transaction's inputs grouped, they are
// hashed through one crypto::sha256d_many call — SIMD lanes across inputs
// on top of the template's O(tx_size + n·script_size) serialization bound.
// Non-standard requests (P2SH redeem scripts, exotic hash types) fall back
// to the template's midstate patch-and-hash path.
//
// Thread-safety: immutable after construction except the bytes-saved
// counter; digest() may be called concurrently from pool workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "chain/sighash_template.hpp"
#include "core/ebv_transaction.hpp"

namespace ebv::core {

/// Minimum input count before the validators build a TxSighashCache. A
/// single-input transaction has nothing to amortize — the template build
/// plus the eager one-lane batch costs slightly more than one naive
/// serialize-and-hash — so those transactions keep the naive path and the
/// template engages only where it wins (see bench/micro_crypto BM_Sighash_*).
inline constexpr std::size_t kSighashCacheMinInputs = 2;

class TxSighashCache {
public:
    explicit TxSighashCache(const EbvTransaction& tx);

    TxSighashCache(const TxSighashCache&) = delete;
    TxSighashCache& operator=(const TxSighashCache&) = delete;

    /// Sighash for (input_index, script_code, hash_type); bit-identical to
    /// ebv_signature_hash on the same arguments.
    [[nodiscard]] crypto::Hash256 digest(std::size_t input_index,
                                         util::ByteSpan script_code,
                                         std::uint8_t hash_type) const;

    /// Serialization + hashing bytes avoided relative to the naive
    /// re-serializing path, accumulated across digest() calls (feeds the
    /// ebv.crypto.sighash_bytes_saved metric).
    [[nodiscard]] std::uint64_t bytes_saved() const {
        return bytes_saved_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] const chain::SighashTemplate& tpl() const { return tpl_; }

private:
    const EbvTransaction& tx_;
    chain::SighashTemplate tpl_;
    std::vector<crypto::Hash256> standard_;     ///< SIGHASH_ALL over the ELs lock script
    std::vector<std::uint8_t> has_standard_;    ///< 0 = compute via template
    mutable std::atomic<std::uint64_t> bytes_saved_{0};
};

}  // namespace ebv::core
