#include "core/ebv_validator.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "chain/amount.hpp"
#include "core/sig_cache.hpp"
#include "core/sv_batcher.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/parse_memo.hpp"
#include "crypto/sha256.hpp"
#include "util/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ebv::core {

const char* to_string(EbvError e) {
    switch (e) {
        case EbvError::kEmptyBlock: return "empty block";
        case EbvError::kFirstTxNotCoinbase: return "first tx not coinbase";
        case EbvError::kUnexpectedCoinbase: return "unexpected coinbase";
        case EbvError::kMissingInputs: return "transaction has no inputs";
        case EbvError::kMerkleRootMismatch: return "merkle root mismatch";
        case EbvError::kBadStakePosition: return "bad stake position";
        case EbvError::kTooManyOutputs: return "too many outputs";
        case EbvError::kUnknownHeight: return "input height beyond chain";
        case EbvError::kExistenceFailed: return "existence validation failed";
        case EbvError::kBadOutIndex: return "output index not in ELs";
        case EbvError::kUnspentFailed: return "unspent validation failed";
        case EbvError::kDoubleSpendInBlock: return "double spend within block";
        case EbvError::kImmatureCoinbaseSpend: return "immature coinbase spend";
        case EbvError::kValueOutOfRange: return "value out of range";
        case EbvError::kNegativeFee: return "negative fee";
        case EbvError::kCoinbaseValueTooHigh: return "coinbase value too high";
        case EbvError::kScriptFailure: return "script validation failed";
    }
    return "unknown EBV error";
}

std::string EbvValidationFailure::describe() const {
    std::string out = to_string(error);
    out += " (tx " + std::to_string(tx_index) + ", input " + std::to_string(input_index);
    if (error == EbvError::kScriptFailure) {
        out += ", script: ";
        out += script::to_string(script_error);
    }
    out += ")";
    return out;
}

EbvError to_ebv_error(EvStatus status) {
    switch (status) {
        case EvStatus::kUnknownHeight: return EbvError::kUnknownHeight;
        case EvStatus::kBadOutIndex: return EbvError::kBadOutIndex;
        case EvStatus::kExistenceFailed: return EbvError::kExistenceFailed;
        case EvStatus::kOk: break;
    }
    EBV_ASSERT(false);  // kOk is not an error
    return EbvError::kExistenceFailed;
}

EvStatus ev_check_input(const EbvInput& in, const chain::BlockHeader* header,
                        std::uint32_t spending_height) {
    if (header == nullptr || in.height >= spending_height) return EvStatus::kUnknownHeight;
    if (in.out_index >= in.els.outputs.size()) return EvStatus::kBadOutIndex;
    const crypto::Hash256 folded = crypto::fold_branch(in.els.leaf_hash(), in.mbr);
    if (folded != header->merkle_root) return EvStatus::kExistenceFailed;
    return EvStatus::kOk;
}

script::ScriptError sv_check_input(const EbvTransaction& tx, std::size_t input_index,
                                   const TxSighashCache* cache, SigCache* sigcache) {
    const EbvInput& in = tx.inputs[input_index];
    EbvSignatureChecker checker(tx, input_index, cache, sigcache);
    return script::verify_script(in.unlock_script, in.els.outputs[in.out_index].lock_script,
                                 checker);
}

std::optional<EbvValidationFailure> check_block_structure(const EbvBlock& block,
                                                          const chain::ChainParams& params) {
    if (block.txs.empty()) return EbvValidationFailure{EbvError::kEmptyBlock};
    if (!block.txs[0].is_coinbase())
        return EbvValidationFailure{EbvError::kFirstTxNotCoinbase};
    for (std::size_t i = 1; i < block.txs.size(); ++i) {
        if (block.txs[i].is_coinbase())
            return EbvValidationFailure{EbvError::kUnexpectedCoinbase, i};
        if (block.txs[i].inputs.empty())
            return EbvValidationFailure{EbvError::kMissingInputs, i};
    }
    if (block.output_count() > params.max_outputs_per_block)
        return EbvValidationFailure{EbvError::kTooManyOutputs};

    // Stake positions must be the running output count (§IV-D2); a
    // wrong assignment would let absolute positions be forged.
    std::uint32_t running = 0;
    for (std::size_t i = 0; i < block.txs.size(); ++i) {
        if (block.txs[i].stake_position != running)
            return EbvValidationFailure{EbvError::kBadStakePosition, i};
        running += static_cast<std::uint32_t>(block.txs[i].outputs.size());
    }

    if (block.compute_merkle_root() != block.header.merkle_root)
        return EbvValidationFailure{EbvError::kMerkleRootMismatch};

    for (std::size_t t = 0; t < block.txs.size(); ++t) {
        chain::Amount total_out = 0;
        for (const auto& out : block.txs[t].outputs) {
            // add_money also bounds the per-tx output *sum*: 65k individually
            // in-range outputs can still wrap total_output_value() past the
            // supply cap, so the later fee arithmetic must never see it.
            if (!chain::add_money(total_out, out.value))
                return EbvValidationFailure{EbvError::kValueOutOfRange, t};
        }
    }
    return std::nullopt;
}

bool EbvSignatureChecker::check_signature(util::ByteSpan signature, util::ByteSpan pubkey,
                                          util::ByteSpan script_code) const {
    const auto job = prepare_signature(signature, pubkey, script_code);
    if (!job) return false;
    // Cache hit = this exact (sighash, pubkey, sig) triple already verified
    // TRUE (only successes are ever inserted), so the curve check is
    // redundant. Misses verify inline and, on success, warm the cache.
    if (sigcache_ != nullptr && sigcache_->contains(*job)) return true;
    const bool ok = job->key.verify(job->digest, job->sig);
    if (ok && sigcache_ != nullptr) sigcache_->insert(*job);
    return ok;
}

std::optional<crypto::VerifyJob> EbvSignatureChecker::prepare_signature(
    util::ByteSpan signature, util::ByteSpan pubkey, util::ByteSpan script_code) const {
    if (signature.empty()) return std::nullopt;
    const std::uint8_t hash_type = signature.back();
    if (hash_type != 0x01) return std::nullopt;  // SIGHASH_ALL only

    const auto sig = crypto::parse_signature_der_memo(signature.first(signature.size() - 1));
    if (!sig) return std::nullopt;
    const auto key = crypto::parse_public_key_memo(pubkey);
    if (!key) return std::nullopt;

    return crypto::VerifyJob{
        *key, *sig,
        cache_ != nullptr ? cache_->digest(input_index_, script_code, hash_type)
                          : ebv_signature_hash(tx_, input_index_, script_code, hash_type)};
}

bool batch_verify_enabled(const EbvValidatorOptions& options) {
    if (options.batch_verify.has_value()) return *options.batch_verify;
    static const bool env_default = [] {
        const char* v = std::getenv("EBV_BATCH_VERIFY");
        return v != nullptr && std::strtoul(v, nullptr, 10) != 0;
    }();
    return env_default;
}

bool sighash_template_enabled(const EbvValidatorOptions& options) {
    if (options.sighash_template.has_value()) return *options.sighash_template;
    static const bool env_default = [] {
        const char* v = std::getenv("EBV_SIGHASH_TEMPLATE");
        return v == nullptr || std::strtoul(v, nullptr, 10) != 0;  // default ON
    }();
    return env_default;
}

namespace {

class PhaseTimer {
public:
    explicit PhaseTimer(util::TimeCost& target) : target_(target) {}
    ~PhaseTimer() { target_.wall_ns += watch_.elapsed_ns(); }

private:
    util::TimeCost& target_;
    util::Stopwatch watch_;
};

struct SpentKey {
    std::uint64_t packed;
    friend bool operator==(const SpentKey&, const SpentKey&) = default;
};
struct SpentKeyHasher {
    std::size_t operator()(const SpentKey& k) const {
        return std::hash<std::uint64_t>{}(k.packed);
    }
};

SpentKey spent_key(std::uint32_t height, std::uint32_t position) {
    return SpentKey{static_cast<std::uint64_t>(height) << 32 | position};
}

/// Registry handles, resolved once; values survive Registry::reset().
struct EbvMetrics {
    obs::Counter& connects;
    obs::Counter& rejects;
    obs::Counter& txs;
    obs::Counter& inputs;
    obs::Counter& outputs;
    obs::Counter& proof_bytes;
    obs::Counter& pool_tasks;
    obs::Counter& pool_local_pops;
    obs::Counter& pool_steals;
    obs::Counter& pool_steal_attempts;
    obs::Counter& sighash_bytes_saved;
    obs::Gauge& sha256_impl;
    obs::Histogram& ev_ns;
    obs::Histogram& uv_ns;
    obs::Histogram& sv_ns;
    obs::Histogram& update_ns;
    obs::Histogram& other_ns;
    obs::Histogram& total_ns;
    obs::Histogram& pool_steal_ns;
    obs::Histogram& pool_barrier_wait_ns;
    obs::Histogram& sv_parallel_ns;

    static EbvMetrics& get() {
        static EbvMetrics m{
            obs::Registry::global().counter("ebv.block.connects"),
            obs::Registry::global().counter("ebv.block.rejects"),
            obs::Registry::global().counter("ebv.block.txs"),
            obs::Registry::global().counter("ebv.block.inputs"),
            obs::Registry::global().counter("ebv.block.outputs"),
            obs::Registry::global().counter("ebv.block.proof_bytes"),
            obs::Registry::global().counter("ebv.pool.tasks"),
            obs::Registry::global().counter("ebv.pool.local_pops"),
            obs::Registry::global().counter("ebv.pool.steals"),
            obs::Registry::global().counter("ebv.pool.steal_attempts"),
            obs::Registry::global().counter("ebv.crypto.sighash_bytes_saved"),
            obs::Registry::global().gauge("ebv.crypto.sha256_impl"),
            obs::Registry::global().histogram("ebv.block.ev_ns"),
            obs::Registry::global().histogram("ebv.block.uv_ns"),
            obs::Registry::global().histogram("ebv.block.sv_ns"),
            obs::Registry::global().histogram("ebv.block.update_ns"),
            obs::Registry::global().histogram("ebv.block.other_ns"),
            obs::Registry::global().histogram("ebv.block.total_ns"),
            obs::Registry::global().histogram("ebv.pool.steal_ns"),
            obs::Registry::global().histogram("ebv.pool.barrier_wait_ns"),
            obs::Registry::global().histogram("ebv.block.sv_parallel_ns"),
        };
        return m;
    }
};

}  // namespace

util::Result<EbvTimings, EbvValidationFailure> EbvValidator::connect_block(
    const EbvBlock& block, std::uint32_t height) {
    // The block's causal span: worker-side per-input spans and the per-stage
    // aggregates below nest under it (workers inherit this context through
    // the ThreadPool hooks), and it nests under whatever the caller has open.
    obs::ScopedSpan block_span("ebv.block", "block");
    block_span.set_value(height);
    auto result = connect_block_impl(block, height);
    EbvMetrics& m = EbvMetrics::get();
    m.sha256_impl.set(crypto::sha256_impl_index());
    if (!result) {
        m.rejects.inc();
        return result;
    }

    const EbvTimings& t = *result;
    m.connects.inc();
    m.txs.inc(block.txs.size());
    m.inputs.inc(t.inputs);
    m.outputs.inc(t.outputs);
    std::uint64_t proof_bytes = 0;
    for (const EbvTransaction& tx : block.txs) {
        for (const EbvInput& in : tx.inputs) {
            proof_bytes += in.mbr.byte_size() + in.els.serialized_size();
        }
    }
    m.proof_bytes.inc(proof_bytes);
    m.ev_ns.observe(t.ev.total_ns());
    m.uv_ns.observe(t.uv.total_ns());
    m.sv_ns.observe(t.sv.total_ns());
    m.update_ns.observe(t.update.total_ns());
    m.other_ns.observe(t.other.total_ns());
    m.total_ns.observe(t.total().total_ns());

    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
        tracer.record("ebv.block.ev", t.ev);
        tracer.record("ebv.block.uv", t.uv);
        tracer.record("ebv.block.sv", t.sv);
        tracer.record("ebv.block.update", t.update);
        tracer.record("ebv.block.total", t.total());
    }
    return result;
}

util::Result<EbvTimings, EbvValidationFailure> EbvValidator::connect_block_impl(
    const EbvBlock& block, std::uint32_t height) {
    EbvTimings timings;
    timings.inputs = block.input_count();
    timings.outputs = block.output_count();

    // ---- Structural checks ("others") ------------------------------------
    {
        PhaseTimer timer(timings.other);
        if (auto failure = check_block_structure(block, params_))
            return util::Unexpected{*failure};
    }

    // ---- Fused parallel proof checking: EV + SV per input ------------------
    // One job per input runs the whole proof-bound pipeline (leaf hash →
    // fold_branch → root compare → verify_script); UV, double-spend, and
    // value rules stay serial below because they touch shared state and are
    // cheap. Failure reporting is deterministic: verdicts are recorded per
    // input and resolved in input order after the barrier, so 1-thread and
    // N-thread runs reject with identical (tx, input, error) tuples.
    struct InputJob {
        std::size_t tx_index;
        std::size_t input_index;
        const EbvTransaction* tx;
        const EbvInput* in;
    };
    std::vector<InputJob> jobs;
    jobs.reserve(timings.inputs);
    for (std::size_t t = 1; t < block.txs.size(); ++t) {
        const EbvTransaction& tx = block.txs[t];
        for (std::size_t i = 0; i < tx.inputs.size(); ++i)
            jobs.push_back(InputJob{t, i, &tx, &tx.inputs[i]});
    }

    struct InputResult {
        EvStatus ev = EvStatus::kOk;
        script::ScriptError script = script::ScriptError::kOk;
    };
    std::vector<InputResult> results(jobs.size());

    // Lowest failing job index per phase, maintained with a CAS-min. A job
    // may be skipped only when its index is above the current EV minimum:
    // the minimum only ever decreases, so every job below the final minimum
    // was fully evaluated and the resolution below is thread-count-invariant.
    std::atomic<std::size_t> first_ev_fail{jobs.size()};
    std::atomic<std::size_t> first_sv_fail{jobs.size()};
    const auto cas_min = [](std::atomic<std::size_t>& target, std::size_t value) {
        std::size_t cur = target.load(std::memory_order_relaxed);
        while (value < cur &&
               !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
        }
    };

    const bool verify_scripts = options_.verify_scripts;
    const std::size_t slots =
        options_.script_pool != nullptr ? options_.script_pool->thread_count() : 1;
    // Per-slot busy time: each slot is owned by one thread at a time, so no
    // synchronization is needed; used to apportion the pass's wall time.
    std::vector<std::uint64_t> ev_busy(slots, 0);
    std::vector<std::uint64_t> sv_busy(slots, 0);

    // Deferred batched signature checking (docs/CRYPTO.md): SV jobs record
    // signature triples per slot and resolve through crypto::verify_batch;
    // resolve_sv writes the same verdict slots + CAS-min the inline path
    // does, so the resolution below is identical either way.
    const auto resolve_sv = [&](std::size_t j, script::ScriptError err) {
        if (err != script::ScriptError::kOk) {
            results[j].script = err;
            cas_min(first_sv_fail, j);
        }
    };
    std::optional<SvBatcher> batcher;
    if (verify_scripts && batch_verify_enabled(options_))
        batcher.emplace(slots, resolve_sv, options_.sigcache);

    // Per-transaction sighash templates, built lazily by whichever worker
    // first reaches one of the transaction's inputs and shared by the rest
    // (the template is immutable after construction). once_flag is neither
    // movable nor copyable, so the array lives behind a unique_ptr.
    const bool use_template = verify_scripts && sighash_template_enabled(options_);
    std::vector<std::unique_ptr<TxSighashCache>> caches(use_template ? block.txs.size() : 0);
    const auto cache_once =
        use_template ? std::make_unique<std::once_flag[]>(block.txs.size()) : nullptr;

    const bool trace_detail = obs::Tracer::global().detail();
    const auto record_detail = [](const char* name, util::Nanoseconds ns) {
        util::TimeCost cost;
        cost.wall_ns = ns;
        obs::Tracer::global().record(name, cost);
    };

    const auto check_input = [&](std::size_t slot, std::size_t j) {
        if (j > first_ev_fail.load(std::memory_order_relaxed)) return;
        const InputJob& job = jobs[j];
        const EbvInput& in = *job.in;

        // EV: the referenced output must exist in a stored block.
        util::Stopwatch watch;
        const EvStatus ev = ev_check_input(in, headers_.at(in.height), height);
        const auto ev_ns = watch.elapsed_ns();
        ev_busy[slot] += ev_ns;
        if (trace_detail) record_detail("ebv.ev.input", ev_ns);
        if (ev != EvStatus::kOk) {
            results[j].ev = ev;
            cas_min(first_ev_fail, j);
            return;
        }

        // SV, fused into the same job while the input is cache-hot.
        if (!verify_scripts || j > first_sv_fail.load(std::memory_order_relaxed)) return;
        watch.restart();
        const TxSighashCache* cache = nullptr;
        if (use_template && job.tx->inputs.size() >= kSighashCacheMinInputs) {
            // Template construction counts as SV time (it replaces the
            // per-input serialization the naive path would spend there).
            std::call_once(cache_once[job.tx_index], [&] {
                caches[job.tx_index] = std::make_unique<TxSighashCache>(*job.tx);
            });
            cache = caches[job.tx_index].get();
        }
        if (batcher) {
            batcher->check(slot, j, *job.tx, job.input_index, cache);
        } else {
            resolve_sv(j, sv_check_input(*job.tx, job.input_index, cache, options_.sigcache));
        }
        const auto sv_ns = watch.elapsed_ns();
        sv_busy[slot] += sv_ns;
        if (trace_detail) record_detail("ebv.sv.input", sv_ns);
    };

    util::PoolStats pool_before{};
    if (options_.script_pool != nullptr) pool_before = options_.script_pool->stats();
    util::Stopwatch pass_watch;
    if (options_.script_pool != nullptr) {
        options_.script_pool->parallel_for_slots(jobs.size(), check_input);
    } else {
        for (std::size_t j = 0; j < jobs.size(); ++j) check_input(0, j);
    }
    if (batcher) {
        // Drain the below-target remainders on the caller's thread; still
        // SV work, so it stays inside the pass wall clock.
        util::Stopwatch flush_watch;
        batcher->flush_all();
        sv_busy[0] += flush_watch.elapsed_ns();
    }
    const util::Nanoseconds pass_wall = pass_watch.elapsed_ns();

    // Apportion the pass's wall time between EV and SV in proportion to the
    // per-slot busy time, so EbvTimings::total() stays wall-clock and the
    // parallel speedup is visible in the per-phase figures.
    {
        std::uint64_t ev_total = 0;
        std::uint64_t sv_total = 0;
        for (std::size_t s = 0; s < slots; ++s) {
            ev_total += ev_busy[s];
            sv_total += sv_busy[s];
        }
        if (ev_total + sv_total > 0) {
            const auto ev_share = static_cast<util::Nanoseconds>(
                static_cast<double>(pass_wall) * static_cast<double>(ev_total) /
                static_cast<double>(ev_total + sv_total));
            timings.ev.wall_ns += ev_share;
            timings.sv.wall_ns += pass_wall - ev_share;
        } else {
            timings.ev.wall_ns += pass_wall;
        }
    }

    {
        EbvMetrics& m = EbvMetrics::get();
        if (use_template) {
            std::uint64_t saved = 0;
            for (const auto& cache : caches)
                if (cache) saved += cache->bytes_saved();
            if (saved > 0) m.sighash_bytes_saved.inc(saved);
        }
        if (options_.script_pool != nullptr) {
            const util::PoolStats pool_after = options_.script_pool->stats();
            m.pool_tasks.inc(pool_after.tasks - pool_before.tasks);
            // `barrier_wait_ns` was exported as ebv.pool.steal_ns before the
            // stealing scheduler existed; the latter now reports real steal
            // time (docs/OBSERVABILITY.md).
            m.pool_barrier_wait_ns.observe(static_cast<std::int64_t>(
                pool_after.barrier_wait_ns - pool_before.barrier_wait_ns));
            m.pool_steal_ns.observe(
                static_cast<std::int64_t>(pool_after.steal_ns - pool_before.steal_ns));
            m.pool_local_pops.inc(pool_after.local_pops - pool_before.local_pops);
            m.pool_steals.inc(pool_after.steals - pool_before.steals);
            m.pool_steal_attempts.inc(pool_after.steal_attempts -
                                      pool_before.steal_attempts);
        }
        for (std::size_t s = 0; s < slots; ++s)
            if (sv_busy[s] > 0) m.sv_parallel_ns.observe(static_cast<std::int64_t>(sv_busy[s]));
    }

    // ---- Serial resolution: UV, double-spend, value rules, verdicts --------
    // Walks inputs in order, interleaving the parallel pass's EV verdicts
    // with the shared-state checks, so the reported failure is exactly the
    // one the serial pipeline would hit first.
    std::unordered_set<SpentKey, SpentKeyHasher> spent_in_block;
    chain::Amount total_fees = 0;

    {
        std::size_t j = 0;
        for (std::size_t t = 1; t < block.txs.size(); ++t) {
            const EbvTransaction& tx = block.txs[t];
            chain::Amount value_in = 0;

            for (std::size_t i = 0; i < tx.inputs.size(); ++i, ++j) {
                const EbvInput& in = tx.inputs[i];

                if (results[j].ev != EvStatus::kOk) {
                    return util::Unexpected{
                        EbvValidationFailure{to_ebv_error(results[j].ev), t, i}};
                }

                // UV: the bit at the (authenticated) absolute position must be 1.
                {
                    PhaseTimer timer(timings.uv);
                    const std::uint32_t position = in.absolute_position();
                    if (!spent_in_block.insert(spent_key(in.height, position)).second) {
                        return util::Unexpected{
                            EbvValidationFailure{EbvError::kDoubleSpendInBlock, t, i}};
                    }
                    if (auto status = status_.check_unspent(in.height, position); !status) {
                        return util::Unexpected{
                            EbvValidationFailure{EbvError::kUnspentFailed, t, i}};
                    }
                }

                // Value and maturity rules ("others").
                {
                    PhaseTimer timer(timings.other);
                    if (in.els.is_coinbase() &&
                        height < in.height + params_.coinbase_maturity) {
                        return util::Unexpected{
                            EbvValidationFailure{EbvError::kImmatureCoinbaseSpend, t, i}};
                    }
                    // Guarded accumulation: the referenced values are
                    // EV-authenticated, but nothing bounds their *sum* —
                    // unchecked += is the classic inflation overflow.
                    if (!chain::add_money(value_in, in.els.outputs[in.out_index].value)) {
                        return util::Unexpected{
                            EbvValidationFailure{EbvError::kValueOutOfRange, t, i}};
                    }
                }
            }

            {
                PhaseTimer timer(timings.other);
                const chain::Amount value_out = tx.total_output_value();
                if (value_in < value_out)
                    return util::Unexpected{EbvValidationFailure{EbvError::kNegativeFee, t}};
                if (!chain::add_money(total_fees, value_in - value_out))
                    return util::Unexpected{
                        EbvValidationFailure{EbvError::kValueOutOfRange, t}};
            }
        }
    }

    {
        PhaseTimer timer(timings.other);
        const chain::Amount allowed = params_.subsidy_at(height) + total_fees;
        if (block.txs[0].total_output_value() > allowed)
            return util::Unexpected{
                EbvValidationFailure{EbvError::kCoinbaseValueTooHigh, 0}};
    }

    // SV verdicts form their own phase after all EV/UV/value checks, keeping
    // the historical phase order of the serial pipeline.
    if (verify_scripts) {
        const std::size_t j = first_sv_fail.load(std::memory_order_relaxed);
        if (j < jobs.size()) {
            return util::Unexpected{EbvValidationFailure{
                EbvError::kScriptFailure, jobs[j].tx_index, jobs[j].input_index,
                results[j].script}};
        }
    }

    // ---- Block storage: update the bit-vector set (§IV-E1) -----------------
    {
        PhaseTimer timer(timings.update);
        status_.insert_block(height, static_cast<std::uint32_t>(block.output_count()));
        for (std::size_t t = 1; t < block.txs.size(); ++t) {
            for (const EbvInput& in : block.txs[t].inputs) {
                const auto spent = status_.spend(in.height, in.absolute_position());
                EBV_ASSERT(spent.has_value());  // UV above guarantees this
            }
        }
    }

    return timings;
}

}  // namespace ebv::core
