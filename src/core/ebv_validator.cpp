#include "core/ebv_validator.hpp"

#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "chain/amount.hpp"
#include "crypto/ecdsa.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ebv::core {

const char* to_string(EbvError e) {
    switch (e) {
        case EbvError::kEmptyBlock: return "empty block";
        case EbvError::kFirstTxNotCoinbase: return "first tx not coinbase";
        case EbvError::kUnexpectedCoinbase: return "unexpected coinbase";
        case EbvError::kMissingInputs: return "transaction has no inputs";
        case EbvError::kMerkleRootMismatch: return "merkle root mismatch";
        case EbvError::kBadStakePosition: return "bad stake position";
        case EbvError::kTooManyOutputs: return "too many outputs";
        case EbvError::kUnknownHeight: return "input height beyond chain";
        case EbvError::kExistenceFailed: return "existence validation failed";
        case EbvError::kBadOutIndex: return "output index not in ELs";
        case EbvError::kUnspentFailed: return "unspent validation failed";
        case EbvError::kDoubleSpendInBlock: return "double spend within block";
        case EbvError::kImmatureCoinbaseSpend: return "immature coinbase spend";
        case EbvError::kValueOutOfRange: return "value out of range";
        case EbvError::kNegativeFee: return "negative fee";
        case EbvError::kCoinbaseValueTooHigh: return "coinbase value too high";
        case EbvError::kScriptFailure: return "script validation failed";
    }
    return "unknown EBV error";
}

std::string EbvValidationFailure::describe() const {
    std::string out = to_string(error);
    out += " (tx " + std::to_string(tx_index) + ", input " + std::to_string(input_index);
    if (error == EbvError::kScriptFailure) {
        out += ", script: ";
        out += script::to_string(script_error);
    }
    out += ")";
    return out;
}

bool EbvSignatureChecker::check_signature(util::ByteSpan signature, util::ByteSpan pubkey,
                                          util::ByteSpan script_code) const {
    if (signature.empty()) return false;
    const std::uint8_t hash_type = signature.back();
    if (hash_type != 0x01) return false;  // SIGHASH_ALL only

    const auto sig = crypto::Signature::from_der(signature.first(signature.size() - 1));
    if (!sig) return false;
    const auto key = crypto::PublicKey::parse(pubkey);
    if (!key) return false;

    const crypto::Hash256 digest =
        ebv_signature_hash(tx_, input_index_, script_code, hash_type);
    return key->verify(digest, *sig);
}

namespace {

class PhaseTimer {
public:
    explicit PhaseTimer(util::TimeCost& target) : target_(target) {}
    ~PhaseTimer() { target_.wall_ns += watch_.elapsed_ns(); }

private:
    util::TimeCost& target_;
    util::Stopwatch watch_;
};

struct SpentKey {
    std::uint64_t packed;
    friend bool operator==(const SpentKey&, const SpentKey&) = default;
};
struct SpentKeyHasher {
    std::size_t operator()(const SpentKey& k) const {
        return std::hash<std::uint64_t>{}(k.packed);
    }
};

SpentKey spent_key(std::uint32_t height, std::uint32_t position) {
    return SpentKey{static_cast<std::uint64_t>(height) << 32 | position};
}

/// Registry handles, resolved once; values survive Registry::reset().
struct EbvMetrics {
    obs::Counter& connects;
    obs::Counter& rejects;
    obs::Counter& txs;
    obs::Counter& inputs;
    obs::Counter& outputs;
    obs::Counter& proof_bytes;
    obs::Histogram& ev_ns;
    obs::Histogram& uv_ns;
    obs::Histogram& sv_ns;
    obs::Histogram& update_ns;
    obs::Histogram& other_ns;
    obs::Histogram& total_ns;

    static EbvMetrics& get() {
        static EbvMetrics m{
            obs::Registry::global().counter("ebv.block.connects"),
            obs::Registry::global().counter("ebv.block.rejects"),
            obs::Registry::global().counter("ebv.block.txs"),
            obs::Registry::global().counter("ebv.block.inputs"),
            obs::Registry::global().counter("ebv.block.outputs"),
            obs::Registry::global().counter("ebv.block.proof_bytes"),
            obs::Registry::global().histogram("ebv.block.ev_ns"),
            obs::Registry::global().histogram("ebv.block.uv_ns"),
            obs::Registry::global().histogram("ebv.block.sv_ns"),
            obs::Registry::global().histogram("ebv.block.update_ns"),
            obs::Registry::global().histogram("ebv.block.other_ns"),
            obs::Registry::global().histogram("ebv.block.total_ns"),
        };
        return m;
    }
};

}  // namespace

util::Result<EbvTimings, EbvValidationFailure> EbvValidator::connect_block(
    const EbvBlock& block, std::uint32_t height) {
    auto result = connect_block_impl(block, height);
    EbvMetrics& m = EbvMetrics::get();
    if (!result) {
        m.rejects.inc();
        return result;
    }

    const EbvTimings& t = *result;
    m.connects.inc();
    m.txs.inc(block.txs.size());
    m.inputs.inc(t.inputs);
    m.outputs.inc(t.outputs);
    std::uint64_t proof_bytes = 0;
    for (const EbvTransaction& tx : block.txs) {
        for (const EbvInput& in : tx.inputs) {
            proof_bytes += in.mbr.byte_size() + in.els.serialized_size();
        }
    }
    m.proof_bytes.inc(proof_bytes);
    m.ev_ns.observe(t.ev.total_ns());
    m.uv_ns.observe(t.uv.total_ns());
    m.sv_ns.observe(t.sv.total_ns());
    m.update_ns.observe(t.update.total_ns());
    m.other_ns.observe(t.other.total_ns());
    m.total_ns.observe(t.total().total_ns());

    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
        tracer.record("ebv.block.ev", t.ev);
        tracer.record("ebv.block.uv", t.uv);
        tracer.record("ebv.block.sv", t.sv);
        tracer.record("ebv.block.update", t.update);
        tracer.record("ebv.block.total", t.total());
    }
    return result;
}

util::Result<EbvTimings, EbvValidationFailure> EbvValidator::connect_block_impl(
    const EbvBlock& block, std::uint32_t height) {
    EbvTimings timings;
    timings.inputs = block.input_count();
    timings.outputs = block.output_count();

    // ---- Structural checks ("others") ------------------------------------
    {
        PhaseTimer timer(timings.other);
        if (block.txs.empty())
            return util::Unexpected{EbvValidationFailure{EbvError::kEmptyBlock}};
        if (!block.txs[0].is_coinbase())
            return util::Unexpected{EbvValidationFailure{EbvError::kFirstTxNotCoinbase}};
        for (std::size_t i = 1; i < block.txs.size(); ++i) {
            if (block.txs[i].is_coinbase())
                return util::Unexpected{
                    EbvValidationFailure{EbvError::kUnexpectedCoinbase, i}};
            if (block.txs[i].inputs.empty())
                return util::Unexpected{EbvValidationFailure{EbvError::kMissingInputs, i}};
        }
        if (block.output_count() > params_.max_outputs_per_block)
            return util::Unexpected{EbvValidationFailure{EbvError::kTooManyOutputs}};

        // Stake positions must be the running output count (§IV-D2); a
        // wrong assignment would let absolute positions be forged.
        std::uint32_t running = 0;
        for (std::size_t i = 0; i < block.txs.size(); ++i) {
            if (block.txs[i].stake_position != running)
                return util::Unexpected{
                    EbvValidationFailure{EbvError::kBadStakePosition, i}};
            running += static_cast<std::uint32_t>(block.txs[i].outputs.size());
        }

        if (block.compute_merkle_root() != block.header.merkle_root)
            return util::Unexpected{EbvValidationFailure{EbvError::kMerkleRootMismatch}};

        for (std::size_t t = 0; t < block.txs.size(); ++t) {
            for (const auto& out : block.txs[t].outputs) {
                if (!chain::money_range(out.value))
                    return util::Unexpected{
                        EbvValidationFailure{EbvError::kValueOutOfRange, t}};
            }
        }
    }

    // ---- Input checking: EV, UV, value rules ------------------------------
    std::unordered_set<SpentKey, SpentKeyHasher> spent_in_block;
    chain::Amount total_fees = 0;

    for (std::size_t t = 1; t < block.txs.size(); ++t) {
        const EbvTransaction& tx = block.txs[t];
        chain::Amount value_in = 0;

        for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
            const EbvInput& in = tx.inputs[i];

            // EV: the referenced output must exist in a stored block.
            {
                PhaseTimer timer(timings.ev);
                const chain::BlockHeader* header = headers_.at(in.height);
                if (header == nullptr || in.height >= height) {
                    return util::Unexpected{
                        EbvValidationFailure{EbvError::kUnknownHeight, t, i}};
                }
                if (in.out_index >= in.els.outputs.size()) {
                    return util::Unexpected{
                        EbvValidationFailure{EbvError::kBadOutIndex, t, i}};
                }
                const crypto::Hash256 folded =
                    crypto::fold_branch(in.els.leaf_hash(), in.mbr);
                if (folded != header->merkle_root) {
                    return util::Unexpected{
                        EbvValidationFailure{EbvError::kExistenceFailed, t, i}};
                }
            }

            // UV: the bit at the (authenticated) absolute position must be 1.
            {
                PhaseTimer timer(timings.uv);
                const std::uint32_t position = in.absolute_position();
                if (!spent_in_block.insert(spent_key(in.height, position)).second) {
                    return util::Unexpected{
                        EbvValidationFailure{EbvError::kDoubleSpendInBlock, t, i}};
                }
                if (auto status = status_.check_unspent(in.height, position); !status) {
                    return util::Unexpected{
                        EbvValidationFailure{EbvError::kUnspentFailed, t, i}};
                }
            }

            // Value and maturity rules ("others").
            {
                PhaseTimer timer(timings.other);
                if (in.els.is_coinbase() &&
                    height < in.height + params_.coinbase_maturity) {
                    return util::Unexpected{
                        EbvValidationFailure{EbvError::kImmatureCoinbaseSpend, t, i}};
                }
                value_in += in.els.outputs[in.out_index].value;
            }
        }

        {
            PhaseTimer timer(timings.other);
            const chain::Amount value_out = tx.total_output_value();
            if (value_in < value_out)
                return util::Unexpected{EbvValidationFailure{EbvError::kNegativeFee, t}};
            total_fees += value_in - value_out;
        }
    }

    {
        PhaseTimer timer(timings.other);
        const chain::Amount allowed = params_.subsidy_at(height) + total_fees;
        if (block.txs[0].total_output_value() > allowed)
            return util::Unexpected{
                EbvValidationFailure{EbvError::kCoinbaseValueTooHigh, 0}};
    }

    // ---- SV ----------------------------------------------------------------
    if (options_.verify_scripts) {
        PhaseTimer timer(timings.sv);

        struct Job {
            std::size_t tx_index;
            std::size_t input_index;
        };
        std::vector<Job> jobs;
        jobs.reserve(timings.inputs);
        for (std::size_t t = 1; t < block.txs.size(); ++t) {
            for (std::size_t i = 0; i < block.txs[t].inputs.size(); ++i)
                jobs.push_back(Job{t, i});
        }

        std::atomic<bool> failed{false};
        std::optional<EbvValidationFailure> failure;
        std::mutex failure_mutex;

        auto check_one = [&](std::size_t j) {
            if (failed.load(std::memory_order_relaxed)) return;
            const Job& job = jobs[j];
            const EbvTransaction& tx = block.txs[job.tx_index];
            const EbvInput& in = tx.inputs[job.input_index];
            EbvSignatureChecker checker(tx, job.input_index);
            const script::ScriptError err = script::verify_script(
                in.unlock_script, in.els.outputs[in.out_index].lock_script, checker);
            if (err != script::ScriptError::kOk) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard lock(failure_mutex);
                if (!failure) {
                    failure = EbvValidationFailure{EbvError::kScriptFailure, job.tx_index,
                                                   job.input_index, err};
                }
            }
        };

        if (options_.script_pool != nullptr) {
            options_.script_pool->parallel_for(jobs.size(), check_one);
        } else {
            for (std::size_t j = 0; j < jobs.size(); ++j) check_one(j);
        }
        if (failure) return util::Unexpected{*failure};
    }

    // ---- Block storage: update the bit-vector set (§IV-E1) -----------------
    {
        PhaseTimer timer(timings.update);
        status_.insert_block(height, static_cast<std::uint32_t>(block.output_count()));
        for (std::size_t t = 1; t < block.txs.size(); ++t) {
            for (const EbvInput& in : block.txs[t].inputs) {
                const auto spent = status_.spend(in.height, in.absolute_position());
                EBV_ASSERT(spent.has_value());  // UV above guarantees this
            }
        }
    }

    return timings;
}

}  // namespace ebv::core
