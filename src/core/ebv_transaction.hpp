// EBV transaction structures (paper §IV-C).
//
// A *tidy* transaction is what the Merkle leaf commits to: input *hashes*,
// outputs, and the miner-assigned stake position — never input bodies.
// This breaks the recursive-embedding chain (§IV-C2, Fig 9): when a tidy
// transaction later travels as another input's ELs, it carries no proofs of
// its own, so proof size is O(1) in ancestry depth.
//
// An EbvInput (input body) carries the five fields of Fig 7: the Merkle
// branch (MBr), the unlocking script (Us), the enhanced locking script
// (ELs = the previous tidy transaction), the block height, and the output
// position. We store the *relative* position (output index inside ELs);
// the absolute block-wide position UV needs is ELs.stake_position +
// out_index, which Fig 11's stake-position scheme makes unforgeable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "crypto/merkle.hpp"

namespace ebv::core {

class TidyTransaction {
public:
    std::uint32_t version = 1;
    std::vector<crypto::Hash256> input_hashes;
    std::vector<chain::TxOut> outputs;
    std::uint32_t locktime = 0;
    /// Coinbase marker/payload (the height-tagged data a Bitcoin coinbase
    /// carries in its unlock script). Non-empty iff this is a coinbase.
    util::Bytes coinbase_data;
    /// Absolute position of this transaction's first output, counted from
    /// the block's first output. Assigned by the miner at packaging; its
    /// integrity is guaranteed by the Merkle leaf covering it.
    std::uint32_t stake_position = 0;

    [[nodiscard]] bool is_coinbase() const {
        return input_hashes.empty() && !coinbase_data.empty();
    }

    void serialize(util::Writer& w) const;
    static util::Result<TidyTransaction, util::DecodeError> deserialize(util::Reader& r);

    /// The Merkle leaf: double-SHA256 of the tidy serialization.
    [[nodiscard]] crypto::Hash256 leaf_hash() const;

    [[nodiscard]] std::size_t serialized_size() const;

    friend bool operator==(const TidyTransaction&, const TidyTransaction&) = default;
};

struct EbvInput {
    /// The legacy outpoint (txid, index) and sequence are retained so that
    /// signatures made over the Bitcoin-style transaction remain valid
    /// after reconstruction — the intermediary node (§VI-A) converts
    /// existing chains without access to any private keys. The outpoint
    /// plays no role in EV/UV; those trust only (height, position, MBr).
    chain::OutPoint prevout;
    std::uint32_t sequence = 0xffffffff;
    std::uint32_t height = 0;      ///< block containing the spent output
    std::uint16_t out_index = 0;   ///< output index inside ELs (relative position)
    script::Script unlock_script;  ///< Us
    TidyTransaction els;           ///< ELs: the previous tidy transaction
    crypto::MerkleBranch mbr;      ///< MBr: proves els ∈ block `height`

    void serialize(util::Writer& w) const;
    static util::Result<EbvInput, util::DecodeError> deserialize(util::Reader& r);

    /// The hash embedded in the tidy transaction for this input.
    [[nodiscard]] crypto::Hash256 input_hash() const;

    /// Absolute block-wide position of the output this input spends.
    [[nodiscard]] std::uint32_t absolute_position() const {
        return els.stake_position + out_index;
    }

    [[nodiscard]] std::size_t serialized_size() const;

    friend bool operator==(const EbvInput&, const EbvInput&) = default;
};

/// A full EBV transaction: the tidy core plus the input bodies that travel
/// alongside it (Fig 9a).
class EbvTransaction {
public:
    std::uint32_t version = 1;
    std::vector<EbvInput> inputs;
    std::vector<chain::TxOut> outputs;
    std::uint32_t locktime = 0;
    util::Bytes coinbase_data;
    std::uint32_t stake_position = 0;

    [[nodiscard]] bool is_coinbase() const {
        return inputs.empty() && !coinbase_data.empty();
    }

    /// Project out the tidy transaction (recomputes input hashes).
    [[nodiscard]] TidyTransaction tidy() const;
    /// The Merkle leaf of this transaction.
    [[nodiscard]] crypto::Hash256 leaf_hash() const { return tidy().leaf_hash(); }

    void serialize(util::Writer& w) const;
    static util::Result<EbvTransaction, util::DecodeError> deserialize(util::Reader& r);
    [[nodiscard]] std::size_t serialized_size() const;

    [[nodiscard]] chain::Amount total_output_value() const;

    friend bool operator==(const EbvTransaction&, const EbvTransaction&) = default;
};

/// The digest an EBV unlocking-script signature commits to. Byte-identical
/// to the legacy signature hash of the corresponding Bitcoin-style
/// transaction (prevouts + sequences + outputs), so original signatures
/// survive intermediary reconstruction. Proof fields (MBr, ELs, height,
/// position) and the miner-assigned stake position are excluded — they are
/// derived data the signer does not control.
crypto::Hash256 ebv_signature_hash(const EbvTransaction& tx, std::size_t input_index,
                                   util::ByteSpan script_code, std::uint8_t hash_type);

struct EbvBlock {
    chain::BlockHeader header;
    std::vector<EbvTransaction> txs;

    /// Merkle leaves are tidy-transaction hashes.
    [[nodiscard]] std::vector<crypto::Hash256> merkle_leaves() const;
    [[nodiscard]] crypto::Hash256 compute_merkle_root() const;

    /// Miner step (§IV-D2): set each transaction's stake position to the
    /// running output count, then recompute the Merkle root.
    void assign_stake_positions();

    void serialize(util::Writer& w) const;
    static util::Result<EbvBlock, util::DecodeError> deserialize(util::Reader& r);
    [[nodiscard]] std::size_t serialized_size() const;

    [[nodiscard]] std::size_t input_count() const;
    [[nodiscard]] std::size_t output_count() const;
};

}  // namespace ebv::core
