// The EBV status representation: one bit per output of one block
// (1 = unspent). Implements the paper's §IV-E2 vector optimization — a
// vector with few 1-bits is held as a sorted array of 16-bit indexes
// instead of a bitmap, behind a one-bit representation flag on the wire.
#pragma once

#include <cstdint>
#include <vector>

#include "util/result.hpp"
#include "util/serialize.hpp"

namespace ebv::core {

class BitVector {
public:
    BitVector() = default;

    /// A fresh block's vector: `bits` outputs, all unspent (all ones).
    static BitVector all_ones(std::uint32_t bits);
    /// An all-spent vector (reorg bookkeeping; starts sparse and empty).
    static BitVector all_zeros(std::uint32_t bits);

    [[nodiscard]] std::uint32_t size() const { return size_; }
    [[nodiscard]] std::uint32_t ones() const { return ones_; }
    [[nodiscard]] bool none() const { return ones_ == 0; }
    [[nodiscard]] bool is_sparse() const { return sparse_; }

    /// Test the bit at `index`; false for out-of-range.
    [[nodiscard]] bool test(std::uint32_t index) const;

    /// Clear the bit at `index`. Returns whether it was set (a false return
    /// is a double-spend signal). May switch to the sparse representation.
    bool reset(std::uint32_t index);

    /// Set the bit at `index` (reorg support: un-spend an output). Returns
    /// whether it was previously clear; false for out-of-range.
    bool set(std::uint32_t index);

    /// Bytes this vector occupies in its current representation — the
    /// quantity Fig 14's "EBV" line sums.
    [[nodiscard]] std::size_t memory_bytes() const;
    /// Bytes a dense bitmap would need — Fig 14's "EBV w/o optimization".
    [[nodiscard]] std::size_t dense_memory_bytes() const;

    /// Wire format (paper Fig 13b): flag byte (0 = bitmap, 1 = index
    /// array), then the representation.
    void serialize(util::Writer& w) const;
    static util::Result<BitVector, util::DecodeError> deserialize(util::Reader& r);

    friend bool operator==(const BitVector& a, const BitVector& b);

private:
    void maybe_compact();
    void to_sparse();

    // Exactly one representation is active.
    std::vector<std::uint8_t> bitmap_;       // dense
    std::vector<std::uint16_t> one_indexes_; // sparse, sorted ascending
    std::uint32_t size_ = 0;
    std::uint32_t ones_ = 0;
    bool sparse_ = false;
};

}  // namespace ebv::core
