#include "core/tx_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <optional>

#include "chain/amount.hpp"
#include "core/sighash_cache.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace ebv::core {

namespace {

/// Registry handles, resolved once (values survive Registry::reset()).
struct TxPoolMetrics {
    obs::Counter& submitted;
    obs::Counter& accepted;
    obs::Counter& rejected;
    obs::Counter& evicted;           ///< confirmed-spend evictions
    obs::Counter& budget_evictions;  ///< lowest-feerate drops under EBV_MEMPOOL_BYTES
    obs::Counter& replacements;      ///< pooled txs displaced by a better feerate
    obs::Gauge& size;
    obs::Gauge& bytes;
    obs::Histogram& admission_ns;    ///< batch start -> per-tx verdict resolved
    obs::Histogram& batch_size;

    static TxPoolMetrics& get() {
        static TxPoolMetrics m{
            obs::Registry::global().counter("ebv.txpool.submitted"),
            obs::Registry::global().counter("ebv.txpool.accepted"),
            obs::Registry::global().counter("ebv.txpool.rejected"),
            obs::Registry::global().counter("ebv.txpool.evicted"),
            obs::Registry::global().counter("ebv.txpool.budget_evictions"),
            obs::Registry::global().counter("ebv.txpool.replacements"),
            obs::Registry::global().gauge("ebv.txpool.size"),
            obs::Registry::global().gauge("ebv.txpool.bytes"),
            obs::Registry::global().histogram("ebv.txpool.admission_ns"),
            obs::Registry::global().histogram(
                "ebv.txpool.batch_size", obs::Histogram::exponential_bounds(1, 2.0, 12)),
        };
        return m;
    }
};

/// The stateless per-transaction pipeline, shared verbatim by the public
/// validate_transaction() and the (possibly parallel) prevalidation pass of
/// submit_batch() — which is what makes batch verdicts bit-identical to
/// serial ones. Checks run in the serial order EV -> UV -> maturity ->
/// value -> SV per input, first failure wins. On kAccepted, *fee_out holds
/// the transaction fee.
TxAdmission stateless_verdict(const EbvTransaction& tx, const chain::ChainParams& params,
                              const chain::HeaderIndex& headers, const BitVectorSet& status,
                              std::uint32_t next_height, bool verify_scripts,
                              SigCache* sigcache, chain::Amount* fee_out) {
    if (tx.is_coinbase() || tx.inputs.empty()) return TxAdmission::kNotStandalone;

    chain::Amount value_in = 0;
    for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
        const EbvInput& in = tx.inputs[i];

        // EV — exactly as in block validation.
        if (ev_check_input(in, headers.at(in.height), next_height) != EvStatus::kOk)
            return TxAdmission::kExistenceFailed;

        // UV against the chain state.
        if (!status.check_unspent(in.height, in.absolute_position()))
            return TxAdmission::kUnspentFailed;

        if (in.els.is_coinbase() && next_height < in.height + params.coinbase_maturity) {
            return TxAdmission::kImmatureCoinbase;
        }
        if (!chain::add_money(value_in, in.els.outputs[in.out_index].value))
            return TxAdmission::kBadValue;
    }

    chain::Amount value_out = 0;
    for (const auto& out : tx.outputs) {
        if (!chain::money_range(out.value)) return TxAdmission::kBadValue;
        if (!chain::add_money(value_out, out.value)) return TxAdmission::kBadValue;
    }
    if (value_out > value_in) return TxAdmission::kBadValue;

    if (verify_scripts) {
        std::optional<TxSighashCache> cache_storage;
        if (tx.inputs.size() >= kSighashCacheMinInputs) cache_storage.emplace(tx);
        const TxSighashCache* cache = cache_storage ? &*cache_storage : nullptr;
        for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
            if (sv_check_input(tx, i, cache, sigcache) != script::ScriptError::kOk)
                return TxAdmission::kScriptFailed;
        }
    }
    if (fee_out != nullptr) *fee_out = value_in - value_out;
    return TxAdmission::kAccepted;
}

}  // namespace

const char* to_string(TxAdmission a) {
    switch (a) {
        case TxAdmission::kAccepted: return "accepted";
        case TxAdmission::kDuplicate: return "duplicate";
        case TxAdmission::kConflict: return "conflicts with pooled spend";
        case TxAdmission::kExistenceFailed: return "existence validation failed";
        case TxAdmission::kUnspentFailed: return "unspent validation failed";
        case TxAdmission::kImmatureCoinbase: return "immature coinbase spend";
        case TxAdmission::kBadValue: return "bad value";
        case TxAdmission::kScriptFailed: return "script validation failed";
        case TxAdmission::kNotStandalone: return "coinbase cannot be relayed";
        case TxAdmission::kPoolFull: return "below pool feerate floor";
    }
    return "unknown admission result";
}

TxAdmission validate_transaction(const EbvTransaction& tx,
                                 const chain::ChainParams& params,
                                 const chain::HeaderIndex& headers,
                                 const BitVectorSet& status,
                                 std::uint32_t next_height, bool verify_scripts,
                                 SigCache* sigcache) {
    return stateless_verdict(tx, params, headers, status, next_height, verify_scripts,
                             sigcache, nullptr);
}

TxPoolOptions TxPoolOptions::from_env(TxPoolOptions base) {
    if (const char* env = std::getenv("EBV_MEMPOOL_BYTES")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env) base.max_bytes = static_cast<std::size_t>(v);
    }
    return base;
}

struct TxPool::Prevalidation {
    crypto::Hash256 leaf;
    TxAdmission verdict = TxAdmission::kAccepted;
    chain::Amount fee = 0;
    std::size_t bytes = 0;
};

bool TxPool::feerate_beats(const Entry& a, const Entry& b) const {
    const auto lhs = static_cast<unsigned __int128>(a.fee) * b.bytes;
    const auto rhs = static_cast<unsigned __int128>(b.fee) * a.bytes;
    return lhs > rhs;
}

void TxPool::prevalidate(const EbvTransaction& tx, Prevalidation& out) const {
    out.leaf = tx.leaf_hash();
    out.bytes = tx.serialized_size() + kEntryOverheadBytes;
    const std::uint32_t next_height = headers_.empty() ? 0 : headers_.height() + 1;
    out.verdict = stateless_verdict(tx, params_, headers_, status_, next_height,
                                    options_.verify_scripts, options_.sigcache, &out.fee);
}

TxAdmission TxPool::resolve(const EbvTransaction& tx, const Prevalidation& pre) {
    if (pool_.count(pre.leaf)) return TxAdmission::kDuplicate;

    // Pool-internal conflicts: any pooled tx spending one of our inputs.
    std::vector<crypto::Hash256> conflicts;
    for (const EbvInput& in : tx.inputs) {
        const auto it = spends_.find(spend_key(in.height, in.absolute_position()));
        if (it == spends_.end()) continue;
        if (std::find(conflicts.begin(), conflicts.end(), it->second) == conflicts.end())
            conflicts.push_back(it->second);
    }
    if (!conflicts.empty()) {
        // Replace-by-feerate: a fully valid newcomer displaces the pooled
        // spenders only when it strictly out-bids every one of them.
        if (!options_.replace_by_feerate || pre.verdict != TxAdmission::kAccepted)
            return TxAdmission::kConflict;
        const Entry incoming{tx, pre.fee, pre.bytes};
        for (const crypto::Hash256& leaf : conflicts) {
            if (!feerate_beats(incoming, pool_.at(leaf))) return TxAdmission::kConflict;
        }
    }
    if (pre.verdict != TxAdmission::kAccepted) return pre.verdict;

    for (const crypto::Hash256& leaf : conflicts) {
        erase_entry(leaf);
        TxPoolMetrics::get().replacements.inc();
    }

    Entry entry;
    entry.tx = tx;
    entry.fee = pre.fee;
    entry.bytes = pre.bytes;
    insert_entry(pre.leaf, std::move(entry));

    // The budget may evict the newcomer itself when its feerate ranks last.
    if (trim_to_budget() > 0 && pool_.count(pre.leaf) == 0)
        return TxAdmission::kPoolFull;
    return TxAdmission::kAccepted;
}

void TxPool::insert_entry(const crypto::Hash256& leaf, Entry entry) {
    for (const EbvInput& in : entry.tx.inputs)
        spends_[spend_key(in.height, in.absolute_position())] = leaf;
    ranked_.insert(Rank{entry.fee, entry.bytes, leaf});
    bytes_ += entry.bytes;
    pool_.emplace(leaf, std::move(entry));
}

void TxPool::erase_entry(const crypto::Hash256& leaf) {
    const auto it = pool_.find(leaf);
    if (it == pool_.end()) return;
    const Entry& entry = it->second;
    for (const EbvInput& in : entry.tx.inputs)
        spends_.erase(spend_key(in.height, in.absolute_position()));
    ranked_.erase(Rank{entry.fee, entry.bytes, leaf});
    bytes_ -= entry.bytes;
    pool_.erase(it);
}

std::size_t TxPool::trim_to_budget() {
    if (options_.max_bytes == 0) return 0;
    std::size_t evicted = 0;
    while (bytes_ > options_.max_bytes && !ranked_.empty()) {
        erase_entry(std::prev(ranked_.end())->leaf);
        ++evicted;
    }
    if (evicted > 0) TxPoolMetrics::get().budget_evictions.inc(evicted);
    return evicted;
}

TxAdmission TxPool::submit(const EbvTransaction& tx) {
    return submit_batch({&tx, 1})[0];
}

std::vector<TxAdmission> TxPool::submit_batch(std::span<const EbvTransaction> txs) {
    std::vector<TxAdmission> verdicts(txs.size());
    if (txs.empty()) return verdicts;
    TxPoolMetrics& m = TxPoolMetrics::get();
    m.batch_size.observe(static_cast<std::int64_t>(txs.size()));
    util::Stopwatch watch;

    // Stage 1 — stateless prevalidation, fanned across workers. Everything
    // state-independent (leaf hash, EV folds, UV against the frozen chain
    // state, value rules, SV incl. sigcache warm-up) happens here; the
    // chain state cannot change mid-batch, so verdicts match serial runs.
    std::vector<Prevalidation> pre(txs.size());
    const auto body = [&](std::size_t /*slot*/, std::size_t i) {
        prevalidate(txs[i], pre[i]);
    };
    if (options_.pool != nullptr && txs.size() > 1) {
        options_.pool->parallel_for_slots(txs.size(), body);
    } else {
        for (std::size_t i = 0; i < txs.size(); ++i) body(0, i);
    }

    // Stage 2 — serial resolution in submission order: duplicates and
    // conflicts against the pool *and earlier batch entries*, replacement,
    // insertion, budget eviction. This is the only stateful part.
    for (std::size_t i = 0; i < txs.size(); ++i) {
        m.submitted.inc();
        verdicts[i] = resolve(txs[i], pre[i]);
        if (verdicts[i] == TxAdmission::kAccepted) {
            m.accepted.inc();
        } else {
            m.rejected.inc();
        }
        m.admission_ns.observe(static_cast<std::int64_t>(watch.elapsed_ns()));
    }
    m.size.set(static_cast<std::int64_t>(pool_.size()));
    m.bytes.set(static_cast<std::int64_t>(bytes_));
    return verdicts;
}

std::vector<EbvTransaction> TxPool::take_for_block(std::size_t max_txs) {
    // ranked_ already holds the exact drain order; no re-sort needed.
    std::vector<crypto::Hash256> leaves;
    leaves.reserve(std::min(max_txs, ranked_.size()));
    for (const Rank& rank : ranked_) {
        if (leaves.size() >= max_txs) break;
        leaves.push_back(rank.leaf);
    }
    std::vector<EbvTransaction> out;
    out.reserve(leaves.size());
    for (const crypto::Hash256& leaf : leaves) {
        out.push_back(pool_.at(leaf).tx);
        erase_entry(leaf);
    }
    TxPoolMetrics& m = TxPoolMetrics::get();
    m.size.set(static_cast<std::int64_t>(pool_.size()));
    m.bytes.set(static_cast<std::int64_t>(bytes_));
    return out;
}

EbvBlock TxPool::build_template(const script::Script& coinbase_lock,
                                std::size_t max_txs) const {
    const std::uint32_t height = headers_.empty() ? 0 : headers_.height() + 1;

    EbvBlock block;
    block.txs.reserve(1 + std::min(max_txs, ranked_.size()));
    chain::Amount fees = 0;
    EbvTransaction coinbase;  // placeholder; filled once fees are known
    block.txs.push_back(coinbase);
    for (const Rank& rank : ranked_) {
        if (block.txs.size() - 1 >= max_txs) break;
        const Entry& entry = pool_.at(rank.leaf);
        fees += entry.fee;
        block.txs.push_back(entry.tx);
    }

    block.txs[0].coinbase_data = {
        static_cast<std::uint8_t>(height), static_cast<std::uint8_t>(height >> 8),
        static_cast<std::uint8_t>(height >> 16), static_cast<std::uint8_t>(height >> 24), 1};
    block.txs[0].outputs.push_back(
        chain::TxOut{params_.subsidy_at(height) + fees, coinbase_lock});

    block.header.prev_hash = headers_.empty() ? crypto::Hash256{} : headers_.tip_hash();
    block.assign_stake_positions();  // also seals the Merkle root
    return block;
}

std::size_t TxPool::evict_confirmed_spends(const EbvBlock& block) {
    // O(spends in block): each confirmed input hits the spend index once.
    std::size_t evicted = 0;
    for (std::size_t t = 1; t < block.txs.size(); ++t) {
        for (const EbvInput& in : block.txs[t].inputs) {
            const auto it = spends_.find(spend_key(in.height, in.absolute_position()));
            if (it == spends_.end()) continue;
            erase_entry(it->second);
            ++evicted;
        }
    }
    TxPoolMetrics& m = TxPoolMetrics::get();
    m.evicted.inc(evicted);
    m.size.set(static_cast<std::int64_t>(pool_.size()));
    m.bytes.set(static_cast<std::int64_t>(bytes_));
    return evicted;
}

std::size_t TxPool::evict_confirmed_spends() {
    std::vector<crypto::Hash256> doomed;
    for (const auto& [leaf, entry] : pool_) {
        for (const EbvInput& in : entry.tx.inputs) {
            if (!status_.check_unspent(in.height, in.absolute_position())) {
                doomed.push_back(leaf);
                break;
            }
        }
    }
    for (const auto& leaf : doomed) erase_entry(leaf);
    TxPoolMetrics& m = TxPoolMetrics::get();
    m.evicted.inc(doomed.size());
    m.size.set(static_cast<std::int64_t>(pool_.size()));
    m.bytes.set(static_cast<std::int64_t>(bytes_));
    return doomed.size();
}

}  // namespace ebv::core
