#include "core/tx_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "script/interpreter.hpp"

namespace ebv::core {

namespace {

struct TxPoolMetrics {
    obs::Counter& submitted;
    obs::Counter& accepted;
    obs::Counter& rejected;
    obs::Counter& evicted;
    obs::Gauge& size;

    static TxPoolMetrics& get() {
        static TxPoolMetrics m{
            obs::Registry::global().counter("txpool.submitted"),
            obs::Registry::global().counter("txpool.accepted"),
            obs::Registry::global().counter("txpool.rejected"),
            obs::Registry::global().counter("txpool.evicted"),
            obs::Registry::global().gauge("txpool.size"),
        };
        return m;
    }
};

}  // namespace

const char* to_string(TxAdmission a) {
    switch (a) {
        case TxAdmission::kAccepted: return "accepted";
        case TxAdmission::kDuplicate: return "duplicate";
        case TxAdmission::kConflict: return "conflicts with pooled spend";
        case TxAdmission::kExistenceFailed: return "existence validation failed";
        case TxAdmission::kUnspentFailed: return "unspent validation failed";
        case TxAdmission::kImmatureCoinbase: return "immature coinbase spend";
        case TxAdmission::kBadValue: return "bad value";
        case TxAdmission::kScriptFailed: return "script validation failed";
        case TxAdmission::kNotStandalone: return "coinbase cannot be relayed";
    }
    return "unknown admission result";
}

TxAdmission validate_transaction(const EbvTransaction& tx,
                                 const chain::ChainParams& params,
                                 const chain::HeaderIndex& headers,
                                 const BitVectorSet& status,
                                 std::uint32_t next_height, bool verify_scripts) {
    if (tx.is_coinbase() || tx.inputs.empty()) return TxAdmission::kNotStandalone;

    chain::Amount value_in = 0;
    for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
        const EbvInput& in = tx.inputs[i];

        // EV — exactly as in block validation.
        const chain::BlockHeader* header = headers.at(in.height);
        if (header == nullptr || in.height >= next_height)
            return TxAdmission::kExistenceFailed;
        if (in.out_index >= in.els.outputs.size()) return TxAdmission::kExistenceFailed;
        if (crypto::fold_branch(in.els.leaf_hash(), in.mbr) != header->merkle_root)
            return TxAdmission::kExistenceFailed;

        // UV against the chain state.
        if (!status.check_unspent(in.height, in.absolute_position()))
            return TxAdmission::kUnspentFailed;

        if (in.els.is_coinbase() &&
            next_height < in.height + params.coinbase_maturity) {
            return TxAdmission::kImmatureCoinbase;
        }
        value_in += in.els.outputs[in.out_index].value;
    }

    for (const auto& out : tx.outputs) {
        if (!chain::money_range(out.value)) return TxAdmission::kBadValue;
    }
    if (tx.total_output_value() > value_in) return TxAdmission::kBadValue;

    if (verify_scripts) {
        for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
            const EbvInput& in = tx.inputs[i];
            EbvSignatureChecker checker(tx, i);
            if (script::verify_script(in.unlock_script,
                                      in.els.outputs[in.out_index].lock_script,
                                      checker) != script::ScriptError::kOk) {
                return TxAdmission::kScriptFailed;
            }
        }
    }
    return TxAdmission::kAccepted;
}

TxAdmission TxPool::submit(const EbvTransaction& tx) {
    TxPoolMetrics& m = TxPoolMetrics::get();
    m.submitted.inc();
    const TxAdmission verdict = submit_internal(tx);
    if (verdict == TxAdmission::kAccepted) {
        m.accepted.inc();
    } else {
        m.rejected.inc();
    }
    m.size.set(static_cast<std::int64_t>(pool_.size()));
    return verdict;
}

TxAdmission TxPool::submit_internal(const EbvTransaction& tx) {
    const crypto::Hash256 leaf = tx.leaf_hash();
    if (pool_.count(leaf)) return TxAdmission::kDuplicate;

    // Pool-internal conflicts first (cheap), then full validation.
    for (const EbvInput& in : tx.inputs) {
        if (pending_spends_.count(spend_key(in.height, in.absolute_position())))
            return TxAdmission::kConflict;
    }

    const std::uint32_t next_height =
        headers_.empty() ? 0 : headers_.height() + 1;
    const TxAdmission verdict =
        validate_transaction(tx, params_, headers_, status_, next_height);
    if (verdict != TxAdmission::kAccepted) return verdict;

    chain::Amount value_in = 0;
    for (const EbvInput& in : tx.inputs)
        value_in += in.els.outputs[in.out_index].value;

    Entry entry;
    entry.tx = tx;
    entry.fee = value_in - tx.total_output_value();
    entry.bytes = tx.serialized_size();
    for (const EbvInput& in : tx.inputs) {
        pending_spends_.insert(spend_key(in.height, in.absolute_position()));
    }
    pool_.emplace(leaf, std::move(entry));
    return TxAdmission::kAccepted;
}

std::vector<EbvTransaction> TxPool::take_for_block(std::size_t max_txs) {
    std::vector<const Entry*> ranked;
    ranked.reserve(pool_.size());
    for (const auto& [leaf, entry] : pool_) ranked.push_back(&entry);
    std::sort(ranked.begin(), ranked.end(), [](const Entry* a, const Entry* b) {
        const double fa = static_cast<double>(a->fee) / static_cast<double>(a->bytes);
        const double fb = static_cast<double>(b->fee) / static_cast<double>(b->bytes);
        return fa > fb;
    });
    if (ranked.size() > max_txs) ranked.resize(max_txs);

    std::vector<EbvTransaction> out;
    out.reserve(ranked.size());
    for (const Entry* entry : ranked) out.push_back(entry->tx);
    for (const auto& tx : out) {
        for (const EbvInput& in : tx.inputs) {
            pending_spends_.erase(spend_key(in.height, in.absolute_position()));
        }
        pool_.erase(tx.leaf_hash());
    }
    TxPoolMetrics::get().size.set(static_cast<std::int64_t>(pool_.size()));
    return out;
}

std::size_t TxPool::evict_confirmed_spends() {
    std::vector<crypto::Hash256> doomed;
    for (const auto& [leaf, entry] : pool_) {
        for (const EbvInput& in : entry.tx.inputs) {
            if (!status_.check_unspent(in.height, in.absolute_position())) {
                doomed.push_back(leaf);
                break;
            }
        }
    }
    for (const auto& leaf : doomed) {
        const auto it = pool_.find(leaf);
        for (const EbvInput& in : it->second.tx.inputs) {
            pending_spends_.erase(spend_key(in.height, in.absolute_position()));
        }
        pool_.erase(it);
    }
    TxPoolMetrics::get().evicted.inc(doomed.size());
    TxPoolMetrics::get().size.set(static_cast<std::int64_t>(pool_.size()));
    return doomed.size();
}

}  // namespace ebv::core
