#include "core/sv_batcher.hpp"

#include <memory>

#include "core/ebv_validator.hpp"
#include "core/sig_cache.hpp"
#include "obs/metrics.hpp"

namespace ebv::core {

namespace {

/// Registry handles, resolved once (values survive Registry::reset()).
struct CryptoMetrics {
    obs::Histogram& batch_size;
    obs::Counter& inversions_saved;
    obs::Counter& batch_fallbacks;

    static CryptoMetrics& get() {
        static CryptoMetrics m{
            obs::Registry::global().histogram(
                "ebv.crypto.batch_size", obs::Histogram::exponential_bounds(1, 2.0, 8)),
            obs::Registry::global().counter("ebv.crypto.inversions_saved"),
            obs::Registry::global().counter("ebv.crypto.batch_fallbacks"),
        };
        return m;
    }
};

}  // namespace

SvBatcher::SvBatcher(std::size_t slots, Resolve resolve, SigCache* sigcache)
    : resolve_(resolve), sigcache_(sigcache), slots_(slots == 0 ? 1 : slots) {}

void SvBatcher::check(std::size_t slot_index, std::size_t tag, const EbvTransaction& tx,
                      std::size_t input_index, const TxSighashCache* cache) {
    Slot& slot = slots_[slot_index];
    const EbvInput& in = tx.inputs[input_index];

    const EbvSignatureChecker inner(tx, input_index, cache, sigcache_);
    const script::DeferringSignatureChecker deferring(inner);
    const script::ScriptError err = script::verify_script(
        in.unlock_script, in.els.outputs[in.out_index].lock_script, deferring);
    std::vector<crypto::VerifyJob>& collected = deferring.collected();

    if (collected.empty()) {
        // No signature was deferred, so the run was identical to inline.
        resolve_(tag, err);
        return;
    }
    if (err != script::ScriptError::kOk) {
        // The script failed even with optimistic signature results; the
        // inline error may differ (an optimistic `true` can steer
        // conditionals), so re-run for the authoritative verdict.
        ++slot.stats.fallbacks;
        CryptoMetrics::get().batch_fallbacks.inc();
        resolve_(tag, sv_check_input(tx, input_index, cache, sigcache_));
        return;
    }

    if (sigcache_ != nullptr) {
        // Drop triples the sigcache already verified TRUE at admission: a
        // hit is a sound accept, so only the misses need curve work. When
        // everything hits, the optimistic run's success is authoritative —
        // an inline run would make the same opcode decisions.
        std::size_t kept = 0;
        for (crypto::VerifyJob& job : collected) {
            if (sigcache_->contains(job)) continue;
            if (&collected[kept] != &job) collected[kept] = std::move(job);
            ++kept;
        }
        slot.stats.cache_skips += collected.size() - kept;
        collected.resize(kept);
        if (collected.empty()) {
            resolve_(tag, script::ScriptError::kOk);
            return;
        }
    }

    const std::size_t begin = slot.triples.size();
    slot.triples.insert(slot.triples.end(),
                        std::make_move_iterator(collected.begin()),
                        std::make_move_iterator(collected.end()));
    slot.pending.push_back(Pending{tag, &tx, input_index, cache, begin, slot.triples.size()});
    if (slot.triples.size() >= kBatchTarget) flush(slot);
}

void SvBatcher::flush(Slot& slot) {
    if (slot.pending.empty()) return;
    CryptoMetrics& m = CryptoMetrics::get();

    const std::unique_ptr<bool[]> verdicts(new bool[slot.triples.size()]);
    const crypto::BatchVerifyStats batch_stats =
        crypto::verify_batch({slot.triples.data(), slot.triples.size()}, verdicts.get());
    if (sigcache_ != nullptr) {
        // Every triple that batch-verified TRUE is individually genuine
        // (batch verdicts are bit-identical to PublicKey::verify), so it is
        // safe to warm the cache with it even when a sibling triple fails.
        for (std::size_t j = 0; j < slot.triples.size(); ++j)
            if (verdicts[j]) sigcache_->insert(slot.triples[j]);
    }
    ++slot.stats.batches;
    slot.stats.signatures += slot.triples.size();
    slot.stats.inversions_saved += batch_stats.inversions_saved;
    m.batch_size.observe(static_cast<std::uint64_t>(slot.triples.size()));
    m.inversions_saved.inc(batch_stats.inversions_saved);

    for (const Pending& p : slot.pending) {
        bool all_valid = true;
        for (std::size_t j = p.triple_begin; j < p.triple_end; ++j)
            all_valid &= verdicts[j];
        if (all_valid) {
            // Optimistic run succeeded and every deferred signature is
            // genuine: an inline run takes the same path and succeeds.
            resolve_(p.tag, script::ScriptError::kOk);
        } else {
            ++slot.stats.fallbacks;
            m.batch_fallbacks.inc();
            resolve_(p.tag, sv_check_input(*p.tx, p.input_index, p.cache, sigcache_));
        }
    }
    slot.pending.clear();
    slot.triples.clear();
}

void SvBatcher::flush_all() {
    for (Slot& slot : slots_) flush(slot);
}

SvBatcher::Stats SvBatcher::stats() const {
    Stats total;
    for (const Slot& slot : slots_) {
        total.batches += slot.stats.batches;
        total.signatures += slot.stats.signatures;
        total.inversions_saved += slot.stats.inversions_saved;
        total.fallbacks += slot.stats.fallbacks;
        total.cache_skips += slot.stats.cache_skips;
    }
    return total;
}

}  // namespace ebv::core
