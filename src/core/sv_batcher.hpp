// Per-worker deferred Script Validation: each thread-pool slot runs its SV
// jobs with a collect-mode checker (script::DeferringSignatureChecker),
// accumulates the recorded (pubkey, sig, sighash) triples, and drains them
// through crypto::verify_batch once enough are pending — amortizing the
// per-signature modular inversions across the batch (docs/CRYPTO.md).
//
// Determinism contract: an input resolves kOk through the batch only when
// its optimistic script run succeeded AND every one of its triples
// batch-verified — in which case an inline run would have made the exact
// same opcode decisions and also succeeded. Any other outcome (optimistic
// failure with deferred triples, or a batch miss) re-runs the input inline
// via sv_check_input, so the resolved ScriptError is always the inline one
// and failure tuples are bit-identical to a serial, unbatched validator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ebv_transaction.hpp"
#include "core/sighash_cache.hpp"
#include "script/interpreter.hpp"
#include "util/thread_pool.hpp"

namespace ebv::core {

class SigCache;

class SvBatcher {
public:
    /// Verdict callback: resolve(tag, err) fires exactly once per check()
    /// call, on the slot's thread (or on the flush_all() caller). `tag` is
    /// the caller-chosen job identifier passed to check(). The referenced
    /// callable must outlive the batcher's last check()/flush_all().
    using Resolve = util::FunctionRef<void(std::size_t, script::ScriptError)>;

    /// Triples pending per slot before a drain; small enough to stay
    /// cache-resident, large enough that the amortized inversion cost
    /// (1 + 3(N-1) mults instead of N Fermat inversions) is near its floor.
    static constexpr std::size_t kBatchTarget = 16;

    /// `sigcache` (optional) filters admission-verified signatures out of
    /// the deferred batches: a triple the cache holds verified TRUE before,
    /// so it is dropped rather than queued, and an input whose every triple
    /// hits resolves immediately. Verified batch triples are inserted back,
    /// warming the cache for the next block (docs/MEMPOOL.md).
    SvBatcher(std::size_t slots, Resolve resolve, SigCache* sigcache = nullptr);

    /// Deferred SV for one input: runs the script optimistically on `slot`,
    /// resolving immediately when no signature was deferred (the run is
    /// then identical to an inline one) and queueing otherwise. `tx` (and
    /// `cache`, when given — it feeds the checker's sighash template) must
    /// outlive the resolving flush.
    void check(std::size_t slot, std::size_t tag, const EbvTransaction& tx,
               std::size_t input_index, const TxSighashCache* cache = nullptr);

    /// Drain every slot's pending batch. Call once after the parallel
    /// barrier, single-threaded; check() must not run concurrently.
    void flush_all();

    struct Stats {
        std::uint64_t batches = 0;           ///< verify_batch invocations
        std::uint64_t signatures = 0;        ///< triples drained through batches
        std::uint64_t inversions_saved = 0;  ///< amortized modular inversions
        std::uint64_t fallbacks = 0;         ///< inputs re-run inline
        std::uint64_t cache_skips = 0;       ///< triples skipped via SigCache hits
    };
    /// Aggregate over all slots; call after flush_all().
    [[nodiscard]] Stats stats() const;

private:
    struct Pending {
        std::size_t tag;
        const EbvTransaction* tx;
        std::size_t input_index;
        const TxSighashCache* cache;
        std::size_t triple_begin;  ///< into Slot::triples
        std::size_t triple_end;
    };
    // Slots are touched by one thread at a time (util::ThreadPool slot
    // semantics); alignment keeps neighbouring slots off one cache line.
    struct alignas(64) Slot {
        std::vector<Pending> pending;
        std::vector<crypto::VerifyJob> triples;
        Stats stats;
    };

    void flush(Slot& slot);

    Resolve resolve_;
    SigCache* sigcache_;
    std::vector<Slot> slots_;
};

}  // namespace ebv::core
