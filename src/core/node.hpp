// The EBV validator node: memory-resident headers + bit-vector set + the
// EBV validation pipeline, with optional flat-file block persistence. The
// counterpart of chain::BitcoinNode in every Fig 14-18 comparison.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "chain/header_index.hpp"
#include "chain/params.hpp"
#include "core/bitvector_set.hpp"
#include "core/ebv_validator.hpp"
#include "ibd/options.hpp"
#include "storage/flat_store.hpp"

namespace ebv::core {

struct EbvNodeOptions {
    chain::ChainParams params = chain::ChainParams::simnet();
    /// Directory for block bodies; empty = don't persist blocks.
    std::string data_dir;
    EbvValidatorOptions validator;
    /// Inter-block IBD pipelining for submit_blocks (EBV_PIPELINE /
    /// EBV_PIPELINE_WINDOW override at runtime).
    ibd::PipelineOptions pipeline;
};

class EbvNode {
public:
    explicit EbvNode(const EbvNodeOptions& options);

    /// Validate and connect the next block (height = tip + 1).
    util::Result<EbvTimings, EbvValidationFailure> submit_block(const EbvBlock& block);

    /// Validate and connect a batch of consecutive blocks, pipelined across
    /// blocks when options.pipeline (after EBV_PIPELINE et al.) enables it,
    /// serial block-at-a-time otherwise. Both paths accept/reject the same
    /// blocks with the same failure tuple (docs/PIPELINE.md). Defined in
    /// src/ibd/submit.cpp — callers must link ebv_ibd.
    ibd::BatchResult submit_blocks(std::span<const EbvBlock> blocks);

    /// Reorg support: disconnect the tip. The caller supplies the tip block
    /// (EBV validators don't retain bodies unless a block store is
    /// configured); it must match the tip header. Un-spends every input bit
    /// and removes the block's own vector.
    [[nodiscard]] bool disconnect_tip(const EbvBlock& block);

    [[nodiscard]] const chain::HeaderIndex& headers() const { return headers_; }
    [[nodiscard]] BitVectorSet& status() { return status_; }
    [[nodiscard]] const BitVectorSet& status() const { return status_; }
    [[nodiscard]] storage::FlatStore<EbvBlock>* block_store() {
        return block_store_.get();
    }
    [[nodiscard]] std::uint32_t next_height() const {
        return headers_.empty() ? 0 : headers_.height() + 1;
    }

    /// Snapshot persistence ("assumeutxo"-style fast restart): the entire
    /// node state an EBV validator needs — headers, per-height output
    /// counts, and the bit-vector set — is small enough to write and read
    /// in milliseconds, so a restarting node skips IBD entirely.
    void save_snapshot(const std::string& path) const;
    static util::Result<std::unique_ptr<EbvNode>, util::DecodeError> load_snapshot(
        const std::string& path, const EbvNodeOptions& options);

    /// The Fig 14 metric: memory the status data requires.
    [[nodiscard]] std::size_t status_memory_bytes() const {
        return status_.memory_bytes();
    }
    [[nodiscard]] std::size_t status_dense_memory_bytes() const {
        return status_.dense_memory_bytes();
    }

private:
    EbvNodeOptions options_;
    chain::HeaderIndex headers_;
    BitVectorSet status_;
    /// Output count per connected height (4 bytes/block) — needed to
    /// recreate fully-spent vectors when a reorg un-spends into them.
    std::vector<std::uint32_t> output_counts_;
    std::unique_ptr<storage::FlatStore<EbvBlock>> block_store_;
};

}  // namespace ebv::core
