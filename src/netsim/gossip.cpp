#include "netsim/gossip.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ebv::netsim {

namespace {

struct GossipMetrics {
    obs::Counter& propagations;
    obs::Counter& deliveries;
    obs::Counter& relays;
    obs::Histogram& receive_ns;  ///< simulated first-receive time per node

    static GossipMetrics& get() {
        static GossipMetrics m{
            obs::Registry::global().counter("netsim.gossip.propagations"),
            obs::Registry::global().counter("netsim.gossip.deliveries"),
            obs::Registry::global().counter("netsim.gossip.relays"),
            obs::Registry::global().histogram("netsim.gossip.receive_ns"),
        };
        return m;
    }
};

}  // namespace

SimTime PropagationResult::time_to_fraction(double fraction) const {
    std::vector<SimTime> reached;
    reached.reserve(receive_time.size());
    for (SimTime t : receive_time) {
        if (t != kUnreached) reached.push_back(t);
    }
    std::sort(reached.begin(), reached.end());
    const auto need = static_cast<std::size_t>(
        fraction * static_cast<double>(receive_time.size()) + 0.5);
    if (need == 0) return 0;
    if (need > reached.size()) return kUnreached;
    return reached[need - 1];
}

GossipNetwork::GossipNetwork(const GossipOptions& options) : options_(options) {
    EBV_EXPECTS(options.node_count >= 2);
    util::Rng rng(options.topology_seed);

    // Nodes are spread round-robin across the five regions ("dispersed in
    // five regions").
    regions_.resize(options.node_count);
    for (std::size_t i = 0; i < options.node_count; ++i) {
        regions_[i] = static_cast<Region>(i % kRegionCount);
    }

    // Topology: a ring (guarantees connectivity) plus random extra edges
    // until every node has at least `neighbors_per_node` neighbours.
    adjacency_.assign(options.node_count, {});
    auto connect = [&](std::size_t a, std::size_t b) {
        if (a == b) return false;
        auto& na = adjacency_[a];
        if (std::find(na.begin(), na.end(), b) != na.end()) return false;
        na.push_back(b);
        adjacency_[b].push_back(a);
        return true;
    };

    for (std::size_t i = 0; i < options.node_count; ++i) {
        connect(i, (i + 1) % options.node_count);
    }
    for (std::size_t i = 0; i < options.node_count; ++i) {
        int guard = 0;
        while (adjacency_[i].size() < options.neighbors_per_node && guard++ < 100) {
            connect(i, rng.below(options.node_count));
        }
    }
}

PropagationResult GossipNetwork::propagate(std::size_t origin,
                                           const ValidationDelayFn& delay) {
    EBV_EXPECTS(origin < options_.node_count);

    EventQueue queue;
    LatencySampler latency(options_.latency_seed);
    PropagationResult result;
    result.receive_time.assign(options_.node_count, PropagationResult::kUnreached);

    // deliver(node, t): the block arrives at `node` at time t. If it is the
    // first copy, the node validates it and relays to all neighbours.
    std::function<void(std::size_t)> relay = [&](std::size_t node) {
        GossipMetrics::get().relays.inc();
        for (std::size_t neighbor : adjacency_[node]) {
            if (result.receive_time[neighbor] != PropagationResult::kUnreached) continue;
            const SimTime network = latency.sample(regions_[node], regions_[neighbor],
                                                   options_.block_bytes);
            const std::size_t target = neighbor;
            queue.schedule(queue.now() + network, [&, target] {
                if (result.receive_time[target] != PropagationResult::kUnreached) return;
                result.receive_time[target] = queue.now();
                GossipMetrics::get().deliveries.inc();
                GossipMetrics::get().receive_ns.observe(
                    static_cast<std::uint64_t>(queue.now()));
                const SimTime validation = delay(target);
                queue.schedule(queue.now() + validation, [&, target] { relay(target); });
            });
        }
    };

    // The origin already has (and has validated) the block; it relays at t=0.
    GossipMetrics::get().propagations.inc();
    result.receive_time[origin] = 0;
    queue.schedule(0, [&] { relay(origin); });
    queue.run();
    return result;
}

}  // namespace ebv::netsim
