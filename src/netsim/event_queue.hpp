// Discrete-event simulation core: a time-ordered queue of callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ebv::netsim {

using SimTime = std::int64_t;  // nanoseconds of simulated time

class EventQueue {
public:
    using Callback = std::function<void()>;

    void schedule(SimTime at, Callback fn) {
        events_.push(Event{at, next_sequence_++, std::move(fn)});
    }

    /// Run until the queue drains or `until` is reached.
    void run(SimTime until = INT64_MAX) {
        while (!events_.empty() && events_.top().at <= until) {
            // pop before invoking: the callback may schedule more events.
            Event event = events_.top();
            events_.pop();
            now_ = event.at;
            event.fn();
        }
    }

    [[nodiscard]] SimTime now() const { return now_; }
    [[nodiscard]] bool empty() const { return events_.empty(); }

private:
    struct Event {
        SimTime at;
        std::uint64_t sequence;  // FIFO tie-break for simultaneous events
        Callback fn;

        bool operator>(const Event& o) const {
            if (at != o.at) return at > o.at;
            return sequence > o.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    SimTime now_ = 0;
    std::uint64_t next_sequence_ = 0;
};

}  // namespace ebv::netsim
