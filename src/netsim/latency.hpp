// Inter-node latency model: five AWS-like regions with realistic RTTs.
// The paper's propagation experiment runs 20 t2.medium nodes "dispersed in
// five regions" with 2 gossip neighbours per node.
#pragma once

#include <array>
#include <cstdint>

#include "netsim/event_queue.hpp"
#include "util/rng.hpp"

namespace ebv::netsim {

inline constexpr int kRegionCount = 5;

enum class Region { kUsEast = 0, kUsWest, kEuCentral, kApTokyo, kApSydney };

/// One-way latency matrix in milliseconds (approximate public inter-region
/// figures; symmetric).
inline constexpr std::array<std::array<double, kRegionCount>, kRegionCount>
    kOneWayLatencyMs = {{
        // us-east us-west eu     tokyo  sydney
        {1.0, 32.0, 45.0, 75.0, 100.0},   // us-east
        {32.0, 1.0, 70.0, 55.0, 70.0},    // us-west
        {45.0, 70.0, 1.0, 120.0, 140.0},  // eu-central
        {75.0, 55.0, 120.0, 1.0, 52.0},   // ap-tokyo
        {100.0, 70.0, 140.0, 52.0, 1.0},  // ap-sydney
    }};

class LatencySampler {
public:
    explicit LatencySampler(std::uint64_t seed) : rng_(seed) {}

    /// One-way message latency between two regions, with ±20% jitter, plus
    /// a transfer term for the payload at ~100 Mbit/s.
    SimTime sample(Region from, Region to, std::size_t payload_bytes) {
        const double base_ms =
            kOneWayLatencyMs[static_cast<int>(from)][static_cast<int>(to)];
        const double jitter = 0.8 + 0.4 * rng_.uniform01();
        const double transfer_ms =
            static_cast<double>(payload_bytes) * 8.0 / 100e6 * 1e3;
        return static_cast<SimTime>((base_ms * jitter + transfer_ms) * 1e6);
    }

private:
    util::Rng rng_;
};

}  // namespace ebv::netsim
