// Gossip propagation experiment (paper §VI-E): N nodes across regions, each
// with a fixed number of gossip neighbours. A node that *receives* a block
// first validates it (per-node validation delay — the quantity EBV improves)
// and only then forwards it to its neighbours, exactly the behaviour that
// couples validation speed to propagation delay and fork risk.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/latency.hpp"

namespace ebv::netsim {

struct GossipOptions {
    std::size_t node_count = 20;
    std::size_t neighbors_per_node = 2;
    std::uint64_t topology_seed = 7;
    std::uint64_t latency_seed = 11;
    std::size_t block_bytes = 1'000'000;
};

/// Per-node validation delay in simulated nanoseconds; typically sampled
/// from measured validator timings (possibly noisy per node).
using ValidationDelayFn = std::function<SimTime(std::size_t node)>;

struct PropagationResult {
    /// Simulated receive time per node (origin = 0); kUnreached if never.
    std::vector<SimTime> receive_time;
    static constexpr SimTime kUnreached = -1;

    /// Time by which `fraction` of nodes have the block.
    [[nodiscard]] SimTime time_to_fraction(double fraction) const;
    /// Time for the last node — the paper's headline "all nodes" number.
    [[nodiscard]] SimTime time_to_all() const { return time_to_fraction(1.0); }
};

class GossipNetwork {
public:
    explicit GossipNetwork(const GossipOptions& options);

    /// Release a block from `origin` and simulate until quiescent.
    PropagationResult propagate(std::size_t origin, const ValidationDelayFn& delay);

    [[nodiscard]] Region region_of(std::size_t node) const { return regions_[node]; }
    [[nodiscard]] const std::vector<std::size_t>& neighbors_of(std::size_t node) const {
        return adjacency_[node];
    }

private:
    GossipOptions options_;
    std::vector<Region> regions_;
    std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace ebv::netsim
