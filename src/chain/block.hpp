// Block headers and blocks. Headers chain by previous-hash; the Merkle root
// commits to the transaction set (txids as leaves).
#pragma once

#include <cstdint>
#include <vector>

#include "chain/transaction.hpp"
#include "crypto/merkle.hpp"

namespace ebv::chain {

struct BlockHeader {
    std::uint32_t version = 1;
    crypto::Hash256 prev_hash;
    crypto::Hash256 merkle_root;
    std::uint32_t time = 0;
    std::uint32_t bits = 0x207fffff;  ///< compact difficulty target
    std::uint32_t nonce = 0;

    void serialize(util::Writer& w) const;
    static util::Result<BlockHeader, util::DecodeError> deserialize(util::Reader& r);

    /// double-SHA256 of the 80-byte serialization.
    [[nodiscard]] crypto::Hash256 hash() const;

    static constexpr std::size_t kSerializedSize = 80;

    friend bool operator==(const BlockHeader&, const BlockHeader&) = default;
};

struct Block {
    BlockHeader header;
    std::vector<Transaction> txs;

    void serialize(util::Writer& w) const;
    static util::Result<Block, util::DecodeError> deserialize(util::Reader& r);

    /// Merkle root over the txids, in block order.
    [[nodiscard]] crypto::Hash256 compute_merkle_root() const;
    /// The leaf list the root is computed over (needed to build branches).
    [[nodiscard]] std::vector<crypto::Hash256> merkle_leaves() const;

    [[nodiscard]] std::size_t serialized_size() const;
    /// Number of non-coinbase inputs (the paper's per-block "input count").
    [[nodiscard]] std::size_t input_count() const;
    /// Total outputs across all transactions (the EBV bit-vector length).
    [[nodiscard]] std::size_t output_count() const;
};

}  // namespace ebv::chain
