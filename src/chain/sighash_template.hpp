// Per-transaction sighash template: build once, patch-and-hash per input.
//
// The naive legacy sighash (chain/sighash.cpp) re-serializes the *entire*
// transaction for every input, making total sighash work O(n · tx_size) for
// an n-input transaction. The preimages differ only in one slot per input:
// input i's script field carries `script_code` while every other input's
// script is blanked to a single 0x00 CompactSize. A SighashTemplate
// serializes the all-blanked form exactly once, records each input's
// one-byte slot offset, and captures a SHA-256 midstate at each slot's
// 64-byte block boundary. A per-input digest is then: resume the midstate,
// stream the few bytes from the block boundary to the slot, the patched
// script, the shared suffix, and the 4-byte hash type — O(tx_size +
// n · script_size) total instead of O(n · tx_size), with zero per-digest
// serialization or allocation.
//
// For batch hashing (crypto::sha256d_many wants whole messages), preimage()
// materializes a full patched preimage by memcpy from the base buffer —
// still no field-walk re-serialization.
//
// The template is immutable after build; digest()/preimage() are const and
// safe to call concurrently from pool workers sharing one template.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/transaction.hpp"
#include "crypto/hash_types.hpp"
#include "crypto/sha256.hpp"
#include "util/span.hpp"

namespace ebv::chain {

class SighashTemplateBuilder;

class SighashTemplate {
public:
    /// Incremental builder mirroring the preimage layout, so layers with
    /// their own transaction types (core::EbvTransaction) can build
    /// templates without chain knowing about them.
    using Builder = SighashTemplateBuilder;

    /// Template over a Bitcoin-style transaction; digests are bit-identical
    /// to signature_hash(tx, i, script_code, type).
    static SighashTemplate build(const Transaction& tx);

    [[nodiscard]] std::size_t input_count() const { return slots_.size(); }
    /// Size of the shared all-blanked base serialization.
    [[nodiscard]] std::size_t base_size() const { return base_.size(); }

    /// The digest for input `input_index` with `script_code` patched in,
    /// committing to `hash_type` (any type byte; widened to 4 LE bytes
    /// exactly like the naive path).
    [[nodiscard]] crypto::Hash256 digest(std::size_t input_index,
                                         util::ByteSpan script_code,
                                         std::uint8_t hash_type) const;

    /// Length of the full preimage for this input/script pair.
    [[nodiscard]] std::size_t preimage_size(std::size_t input_index,
                                            util::ByteSpan script_code) const;
    /// Materialize the full preimage into `out` (cleared first) for batch
    /// hashing via crypto::sha256d_many.
    void preimage(std::size_t input_index, util::ByteSpan script_code,
                  std::uint8_t hash_type, util::Bytes& out) const;

    /// Base-prefix bytes digest() skips re-hashing for this input thanks to
    /// the stored midstate (callers feed this into the
    /// ebv.crypto.sighash_bytes_saved metric).
    [[nodiscard]] std::size_t prefix_skipped(std::size_t input_index) const {
        return slots_[input_index] & ~std::size_t{63};
    }

private:
    friend class SighashTemplateBuilder;
    SighashTemplate() = default;

    util::Bytes base_;  ///< all-blanked preimage, minus the hash-type tail
    /// Byte offset of each input's blanked 0x00 script slot in base_.
    std::vector<std::uint32_t> slots_;
    /// Compression state over base_[0, slots_[i] & ~63) for each input.
    std::vector<crypto::Sha256::Midstate> midstates_;
};

/// Calls must follow the preimage order: every add_input, then
/// begin_outputs, every add_output, then finish().
class SighashTemplateBuilder {
public:
    /// `size_hint` reserves the base buffer (0 = inputs-only estimate).
    SighashTemplateBuilder(std::uint32_t version, std::size_t input_count,
                           std::size_t output_count, std::size_t size_hint = 0);

    void add_input(const OutPoint& prevout, std::uint32_t sequence);
    /// Writes the vout count; call once, after the last add_input.
    void begin_outputs(std::size_t output_count);
    void add_output(const TxOut& out);
    [[nodiscard]] SighashTemplate finish(std::uint32_t locktime);

private:
    SighashTemplate t_;
};

}  // namespace ebv::chain
