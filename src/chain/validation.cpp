#include "chain/validation.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "chain/sighash.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ebv::chain {

const char* to_string(BlockError e) {
    switch (e) {
        case BlockError::kEmptyBlock: return "empty block";
        case BlockError::kFirstTxNotCoinbase: return "first tx not coinbase";
        case BlockError::kMultipleCoinbases: return "multiple coinbases";
        case BlockError::kMerkleRootMismatch: return "merkle root mismatch";
        case BlockError::kDuplicateTxid: return "duplicate txid";
        case BlockError::kTooManyOutputs: return "too many outputs";
        case BlockError::kMissingOrSpentOutput: return "missing or spent output";
        case BlockError::kImmatureCoinbaseSpend: return "immature coinbase spend";
        case BlockError::kValueOutOfRange: return "value out of range";
        case BlockError::kNegativeFee: return "negative fee";
        case BlockError::kCoinbaseValueTooHigh: return "coinbase value too high";
        case BlockError::kScriptFailure: return "script validation failed";
    }
    return "unknown block error";
}

std::string ValidationFailure::describe() const {
    std::string out = to_string(error);
    out += " (tx " + std::to_string(tx_index) + ", input " + std::to_string(input_index);
    if (error == BlockError::kScriptFailure) {
        out += ", script: ";
        out += script::to_string(script_error);
    }
    out += ")";
    return out;
}

namespace {

/// Phase timer: accumulates wall time plus the status DB's modelled device
/// time into one TimeCost. DBO time is taken from the StatusDb's own
/// instrumentation instead, so this is used for SV and "other".
class PhaseTimer {
public:
    explicit PhaseTimer(util::TimeCost& target) : target_(target) {}
    ~PhaseTimer() { target_.wall_ns += watch_.elapsed_ns(); }

private:
    util::TimeCost& target_;
    util::Stopwatch watch_;
};

util::TimeCost dbo_cost_of(const storage::DboStats& stats) {
    return stats.total_time();
}

/// Registry handles, resolved once; values survive Registry::reset().
struct BtcMetrics {
    obs::Counter& connects;
    obs::Counter& rejects;
    obs::Counter& txs;
    obs::Counter& inputs;
    obs::Counter& outputs;
    obs::Histogram& dbo_ns;
    obs::Histogram& sv_ns;
    obs::Histogram& other_ns;
    obs::Histogram& total_ns;

    static BtcMetrics& get() {
        static BtcMetrics m{
            obs::Registry::global().counter("btc.block.connects"),
            obs::Registry::global().counter("btc.block.rejects"),
            obs::Registry::global().counter("btc.block.txs"),
            obs::Registry::global().counter("btc.block.inputs"),
            obs::Registry::global().counter("btc.block.outputs"),
            obs::Registry::global().histogram("btc.block.dbo_ns"),
            obs::Registry::global().histogram("btc.block.sv_ns"),
            obs::Registry::global().histogram("btc.block.other_ns"),
            obs::Registry::global().histogram("btc.block.total_ns"),
        };
        return m;
    }
};

}  // namespace

util::Result<BlockTimings, ValidationFailure> BitcoinValidator::connect_block(
    const Block& block, std::uint32_t height, BlockUndo* undo) {
    obs::ScopedSpan block_span("btc.block", "block");
    block_span.set_value(height);
    auto result = connect_block_impl(block, height, undo);
    BtcMetrics& m = BtcMetrics::get();
    if (!result) {
        m.rejects.inc();
        return result;
    }

    const BlockTimings& t = *result;
    m.connects.inc();
    m.txs.inc(block.txs.size());
    m.inputs.inc(t.inputs);
    m.outputs.inc(t.outputs);
    m.dbo_ns.observe(t.dbo.total_ns());
    m.sv_ns.observe(t.sv.total_ns());
    m.other_ns.observe(t.other.total_ns());
    m.total_ns.observe(t.total().total_ns());

    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
        tracer.record("btc.block.dbo", t.dbo);
        tracer.record("btc.block.sv", t.sv);
        tracer.record("btc.block.total", t.total());
    }
    return result;
}

util::Result<BlockTimings, ValidationFailure> BitcoinValidator::connect_block_impl(
    const Block& block, std::uint32_t height, BlockUndo* undo) {
    BlockTimings timings;
    timings.inputs = block.input_count();
    timings.outputs = block.output_count();

    storage::StatusDb& db = utxo_.db();
    const storage::DboStats dbo_before = db.dbo();

    // ---- Structural checks (counted as "other") -------------------------
    {
        PhaseTimer timer(timings.other);
        if (block.txs.empty())
            return util::Unexpected{ValidationFailure{BlockError::kEmptyBlock}};
        if (!block.txs[0].is_coinbase())
            return util::Unexpected{ValidationFailure{BlockError::kFirstTxNotCoinbase}};
        for (std::size_t i = 1; i < block.txs.size(); ++i) {
            if (block.txs[i].is_coinbase())
                return util::Unexpected{ValidationFailure{BlockError::kMultipleCoinbases, i}};
        }
        if (block.output_count() > params_.max_outputs_per_block)
            return util::Unexpected{ValidationFailure{BlockError::kTooManyOutputs}};
        if (block.compute_merkle_root() != block.header.merkle_root)
            return util::Unexpected{ValidationFailure{BlockError::kMerkleRootMismatch}};

        std::unordered_set<crypto::Hash256, crypto::Hash256Hasher> seen;
        seen.reserve(block.txs.size());
        for (std::size_t i = 0; i < block.txs.size(); ++i) {
            if (!seen.insert(block.txs[i].txid()).second)
                return util::Unexpected{ValidationFailure{BlockError::kDuplicateTxid, i}};
        }
    }

    // ---- Input checking: ❶ Fetch (EV+UV) then ② SV ----------------------
    struct PendingScript {
        std::size_t tx_index;
        std::size_t input_index;
        Coin coin;
    };
    std::vector<PendingScript> script_jobs;
    script_jobs.reserve(timings.inputs);

    // Outputs created earlier in this same block are spendable by later
    // transactions; track them so intra-block spends resolve.
    std::unordered_map<OutPoint, Coin, OutPointHasher> intra_block;
    std::unordered_set<OutPoint, OutPointHasher> intra_block_spent;

    Amount total_fees = 0;
    for (std::size_t t = 0; t < block.txs.size(); ++t) {
        const Transaction& tx = block.txs[t];

        {
            PhaseTimer timer(timings.other);
            Amount total_out = 0;
            for (const TxOut& out : tx.vout) {
                // add_money also bounds the per-tx output *sum*: 65k
                // individually in-range outputs can still wrap
                // total_output_value() past the supply cap.
                if (!add_money(total_out, out.value))
                    return util::Unexpected{ValidationFailure{BlockError::kValueOutOfRange, t}};
            }
        }

        // BIP30-style duplicate-txid rule: a transaction whose outputs are
        // still unspent must not be re-created — utxo_.add would silently
        // overwrite the earlier coins, destroying them and corrupting undo
        // data. The probe is a ❶-style fetch, so the status DB instruments
        // it as DBO time like any other lookup.
        for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
            if (utxo_.fetch(OutPoint{tx.txid(), o})) {
                return util::Unexpected{ValidationFailure{BlockError::kDuplicateTxid, t}};
            }
        }

        {
            PhaseTimer timer(timings.other);
            for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
                intra_block.emplace(OutPoint{tx.txid(), o},
                                    Coin{tx.vout[o].value, height, tx.is_coinbase(),
                                         tx.vout[o].lock_script});
            }
        }
        if (tx.is_coinbase()) continue;

        Amount value_in = 0;
        for (std::size_t i = 0; i < tx.vin.size(); ++i) {
            const OutPoint& prevout = tx.vin[i].prevout;

            // A prevout consumed earlier in this very block is already
            // spent, wherever it came from.
            if (intra_block_spent.count(prevout)) {
                return util::Unexpected{
                    ValidationFailure{BlockError::kMissingOrSpentOutput, t, i}};
            }

            // ❶ Fetch — the StatusDb instruments this as DBO time.
            std::optional<Coin> coin;
            if (const auto it = intra_block.find(prevout); it != intra_block.end()) {
                coin = it->second;
            } else {
                coin = utxo_.fetch(prevout);
            }
            if (!coin) {
                return util::Unexpected{
                    ValidationFailure{BlockError::kMissingOrSpentOutput, t, i}};
            }

            {
                PhaseTimer timer(timings.other);
                if (coin->coinbase && height < coin->height + params_.coinbase_maturity) {
                    return util::Unexpected{
                        ValidationFailure{BlockError::kImmatureCoinbaseSpend, t, i}};
                }
                // Guarded accumulation: per-coin range checks don't bound
                // the sum — unchecked += is the classic inflation overflow.
                if (!add_money(value_in, coin->value)) {
                    return util::Unexpected{
                        ValidationFailure{BlockError::kValueOutOfRange, t, i}};
                }
                intra_block_spent.insert(prevout);
            }

            script_jobs.push_back(PendingScript{t, i, std::move(*coin)});
        }

        {
            PhaseTimer timer(timings.other);
            const Amount value_out = block.txs[t].total_output_value();
            if (value_in < value_out)
                return util::Unexpected{ValidationFailure{BlockError::kNegativeFee, t}};
            if (!add_money(total_fees, value_in - value_out))
                return util::Unexpected{ValidationFailure{BlockError::kValueOutOfRange, t}};
        }
    }

    // Coinbase value rule.
    {
        PhaseTimer timer(timings.other);
        const Amount allowed = params_.subsidy_at(height) + total_fees;
        if (block.txs[0].total_output_value() > allowed)
            return util::Unexpected{ValidationFailure{BlockError::kCoinbaseValueTooHigh, 0}};
    }

    // ② SV — serial or pooled.
    if (options_.verify_scripts && !script_jobs.empty()) {
        PhaseTimer timer(timings.sv);
        std::atomic<bool> failed{false};
        std::optional<ValidationFailure> failure;
        std::mutex failure_mutex;

        // One sighash template per transaction, shared by all of its input
        // jobs and built lazily inside the parallel region by whichever
        // worker reaches the tx first (contiguous chunking means that is
        // almost always the worker that runs every input of the tx).
        // once_flag is neither movable nor copyable, hence the raw array.
        std::vector<std::optional<SighashTemplate>> templates(block.txs.size());
        const auto tpl_once = std::make_unique<std::once_flag[]>(block.txs.size());

        auto check_one = [&](std::size_t j) {
            if (failed.load(std::memory_order_relaxed)) return;
            const PendingScript& job = script_jobs[j];
            const Transaction& tx = block.txs[job.tx_index];
            std::call_once(tpl_once[job.tx_index],
                           [&] { templates[job.tx_index] = SighashTemplate::build(tx); });
            TransactionSignatureChecker checker(tx, job.input_index,
                                                &*templates[job.tx_index]);
            const script::ScriptError err =
                script::verify_script(tx.vin[job.input_index].unlock_script,
                                      job.coin.lock_script, checker);
            if (err != script::ScriptError::kOk) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard lock(failure_mutex);
                if (!failure) {
                    failure = ValidationFailure{BlockError::kScriptFailure, job.tx_index,
                                                job.input_index, err};
                }
            }
        };

        if (options_.script_pool != nullptr) {
            options_.script_pool->parallel_for(script_jobs.size(), check_one);
        } else {
            for (std::size_t j = 0; j < script_jobs.size(); ++j) check_one(j);
        }
        if (failure) return util::Unexpected{*failure};
    }

    // Record undo data (spent coins, tx-major in input order) before apply.
    if (undo != nullptr) {
        undo->txs.clear();
        undo->txs.resize(block.txs.size() > 0 ? block.txs.size() - 1 : 0);
        for (const PendingScript& job : script_jobs) {
            undo->txs[job.tx_index - 1].spent_coins.push_back(job.coin);
        }
    }

    // ---- Apply: ❸ Delete spent entries, ❹ Insert new outputs ------------
    for (const Transaction& tx : block.txs) {
        if (tx.is_coinbase()) continue;
        for (const TxIn& in : tx.vin) {
            // Spends of outputs created in this block never reached the DB.
            if (!utxo_.spend(in.prevout)) {
                // Entry was intra-block; nothing stored yet.
            }
        }
    }
    for (const Transaction& tx : block.txs) {
        const crypto::Hash256& txid = tx.txid();
        for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
            const OutPoint outpoint{txid, o};
            if (intra_block_spent.count(outpoint)) continue;  // born and died here
            utxo_.add(outpoint, Coin{tx.vout[o].value, height, tx.is_coinbase(),
                                     tx.vout[o].lock_script});
        }
    }

    // DBO time is whatever the status DB accumulated during this call.
    const storage::DboStats dbo_after = db.dbo();
    timings.dbo.wall_ns =
        dbo_cost_of(dbo_after).wall_ns - dbo_cost_of(dbo_before).wall_ns;
    timings.dbo.simulated_ns =
        dbo_cost_of(dbo_after).simulated_ns - dbo_cost_of(dbo_before).simulated_ns;

    return timings;
}

void BitcoinValidator::disconnect_block(const Block& block, const BlockUndo& undo) {
    // Restore spent coins first: intra-block coins (outputs of this same
    // block that were consumed inside it) get re-inserted here and deleted
    // again below, which nets out correctly because every outpoint the
    // block created is erased in the second pass.
    std::size_t undo_index = 0;
    for (std::size_t t = 1; t < block.txs.size(); ++t) {
        const Transaction& tx = block.txs[t];
        EBV_EXPECTS(undo_index < undo.txs.size());
        const TxUndo& tx_undo = undo.txs[undo_index++];
        EBV_EXPECTS(tx_undo.spent_coins.size() == tx.vin.size());
        for (std::size_t i = 0; i < tx.vin.size(); ++i) {
            utxo_.add(tx.vin[i].prevout, tx_undo.spent_coins[i]);
        }
    }

    for (const Transaction& tx : block.txs) {
        const crypto::Hash256& txid = tx.txid();
        for (std::uint32_t o = 0; o < tx.vout.size(); ++o) {
            utxo_.spend(OutPoint{txid, o});
        }
    }
}

}  // namespace ebv::chain
