// The baseline node's UTXO set over an instrumented status database. The
// three database-related operations the paper times — Fetch (❶, performing
// EV+UV together), Delete (❸), Insert (❹) — map 1:1 onto these methods.
#pragma once

#include <optional>

#include "chain/coin.hpp"
#include "chain/outpoint.hpp"
#include "storage/status_db.hpp"

namespace ebv::chain {

class UtxoSet {
public:
    explicit UtxoSet(storage::StatusDb& db) : db_(db) {}

    /// ❶ Fetch: nullopt means the outpoint does not exist *or* was already
    /// spent — Bitcoin cannot distinguish the two (EV+UV are fused).
    std::optional<Coin> fetch(const OutPoint& outpoint);

    /// ❸ Delete a spent entry; returns whether it existed.
    bool spend(const OutPoint& outpoint);

    /// ❹ Insert a fresh output.
    void add(const OutPoint& outpoint, const Coin& coin);

    [[nodiscard]] std::uint64_t size() const { return db_.store().size(); }
    /// Size of the dataset a node must hold to answer fetches from memory —
    /// the paper's Fig 1 / Fig 14 "size of the UTXO set".
    [[nodiscard]] std::uint64_t payload_bytes() const {
        return db_.store().payload_bytes();
    }

    [[nodiscard]] storage::StatusDb& db() { return db_; }

private:
    storage::StatusDb& db_;
};

}  // namespace ebv::chain
