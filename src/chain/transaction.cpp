#include "chain/transaction.hpp"

#include "crypto/sha256.hpp"

namespace ebv::chain {

namespace {

// Sanity caps for deserialization of hostile inputs.
constexpr std::size_t kMaxInputsPerTx = 1 << 16;
constexpr std::size_t kMaxOutputsPerTx = 1 << 16;
constexpr std::size_t kMaxScriptBytes = 1 << 16;

}  // namespace

void Transaction::serialize(util::Writer& w) const {
    w.u32(version);
    w.compact_size(vin.size());
    for (const TxIn& in : vin) {
        in.prevout.serialize(w);
        w.var_bytes(in.unlock_script);
        w.u32(in.sequence);
    }
    w.compact_size(vout.size());
    for (const TxOut& out : vout) {
        w.i64(out.value);
        w.var_bytes(out.lock_script);
    }
    w.u32(locktime);
}

util::Result<Transaction, util::DecodeError> Transaction::deserialize(util::Reader& r) {
    Transaction tx;

    auto version = r.u32();
    if (!version) return util::Unexpected{version.error()};
    tx.version = *version;

    auto in_count = r.compact_size();
    if (!in_count) return util::Unexpected{in_count.error()};
    if (*in_count > kMaxInputsPerTx) return util::Unexpected{util::DecodeError::kOversizedField};
    tx.vin.reserve(static_cast<std::size_t>(*in_count));
    for (std::uint64_t i = 0; i < *in_count; ++i) {
        TxIn in;
        auto prevout = OutPoint::deserialize(r);
        if (!prevout) return util::Unexpected{prevout.error()};
        in.prevout = *prevout;
        auto script = r.var_bytes(kMaxScriptBytes);
        if (!script) return util::Unexpected{script.error()};
        in.unlock_script = std::move(*script);
        auto sequence = r.u32();
        if (!sequence) return util::Unexpected{sequence.error()};
        in.sequence = *sequence;
        tx.vin.push_back(std::move(in));
    }

    auto out_count = r.compact_size();
    if (!out_count) return util::Unexpected{out_count.error()};
    if (*out_count > kMaxOutputsPerTx)
        return util::Unexpected{util::DecodeError::kOversizedField};
    tx.vout.reserve(static_cast<std::size_t>(*out_count));
    for (std::uint64_t i = 0; i < *out_count; ++i) {
        TxOut out;
        auto value = r.i64();
        if (!value) return util::Unexpected{value.error()};
        out.value = *value;
        auto script = r.var_bytes(kMaxScriptBytes);
        if (!script) return util::Unexpected{script.error()};
        out.lock_script = std::move(*script);
        tx.vout.push_back(std::move(out));
    }

    auto locktime = r.u32();
    if (!locktime) return util::Unexpected{locktime.error()};
    tx.locktime = *locktime;

    return tx;
}

const crypto::Hash256& Transaction::txid() const {
    if (!txid_cache_) {
        util::Writer w(serialized_size());
        serialize(w);
        txid_cache_ = crypto::hash256(w.data());
    }
    return *txid_cache_;
}

void Transaction::prime_txids(const std::vector<Transaction>& txs) {
    std::vector<const Transaction*> pending;
    pending.reserve(txs.size());
    for (const Transaction& tx : txs)
        if (!tx.txid_cache_) pending.push_back(&tx);
    if (pending.empty()) return;

    std::vector<util::Bytes> bufs(pending.size());
    std::vector<util::ByteSpan> spans(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        util::Writer w(pending[i]->serialized_size());
        pending[i]->serialize(w);
        bufs[i] = w.take();
        spans[i] = {bufs[i].data(), bufs[i].size()};
    }
    std::vector<crypto::Sha256::Digest> digests(pending.size());
    crypto::sha256d_many(spans.data(), digests.data(), pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        pending[i]->txid_cache_ =
            crypto::Hash256::from_span({digests[i].data(), digests[i].size()});
    }
}

std::size_t Transaction::serialized_size() const {
    std::size_t size = 4 /* version */ + util::compact_size_length(vin.size());
    for (const TxIn& in : vin) {
        size += 36 /* prevout */ +
                util::compact_size_length(in.unlock_script.size()) +
                in.unlock_script.size() + 4 /* sequence */;
    }
    size += util::compact_size_length(vout.size());
    for (const TxOut& out : vout) {
        size += 8 /* value */ + util::compact_size_length(out.lock_script.size()) +
                out.lock_script.size();
    }
    return size + 4 /* locktime */;
}

Amount Transaction::total_output_value() const {
    Amount total = 0;
    for (const TxOut& out : vout) total += out.value;
    return total;
}

}  // namespace ebv::chain
