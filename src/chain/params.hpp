// Consensus parameters. The defaults mirror Bitcoin's constants; the
// workload generator scales some of them down for laptop-sized experiments.
#pragma once

#include <cstdint>

#include "chain/amount.hpp"

namespace ebv::chain {

struct ChainParams {
    /// Blocks a coinbase must age before its outputs are spendable.
    std::uint32_t coinbase_maturity = 100;
    /// Initial per-block subsidy.
    Amount initial_subsidy = 50 * kCoin;
    /// Blocks between subsidy halvings.
    std::uint32_t halving_interval = 210'000;
    /// Upper bound on outputs per block; the paper relies on < 65536 so a
    /// 16-bit index suffices in the sparse-vector encoding.
    std::uint32_t max_outputs_per_block = 65'535;

    [[nodiscard]] Amount subsidy_at(std::uint32_t height) const {
        const std::uint32_t halvings = height / halving_interval;
        if (halvings >= 63) return 0;
        const Amount subsidy = initial_subsidy >> halvings;
        return subsidy;
    }

    static ChainParams mainnet_like() { return {}; }

    /// Parameters for small simulated chains: faster maturity and halvings
    /// so era effects appear within a few thousand blocks.
    static ChainParams simnet(std::uint32_t halving = 50'000) {
        ChainParams p;
        p.coinbase_maturity = 10;
        p.halving_interval = halving;
        return p;
    }
};

}  // namespace ebv::chain
