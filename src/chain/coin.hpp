// A Coin is one unspent output as stored in the baseline status database:
// the value of a UTXO-set entry (the key is the outpoint).
#pragma once

#include <cstdint>

#include "chain/amount.hpp"
#include "script/script.hpp"
#include "util/serialize.hpp"

namespace ebv::chain {

struct Coin {
    Amount value = 0;
    std::uint32_t height = 0;   ///< block that created the output
    bool coinbase = false;      ///< subject to maturity if true
    script::Script lock_script; ///< Ls, needed for SV

    void serialize(util::Writer& w) const {
        w.i64(value);
        // Pack height and the coinbase flag like Bitcoin Core does.
        w.u32(height << 1 | (coinbase ? 1 : 0));
        w.var_bytes(lock_script);
    }

    static util::Result<Coin, util::DecodeError> deserialize(util::Reader& r) {
        Coin coin;
        auto value = r.i64();
        if (!value) return util::Unexpected{value.error()};
        coin.value = *value;
        auto packed = r.u32();
        if (!packed) return util::Unexpected{packed.error()};
        coin.height = *packed >> 1;
        coin.coinbase = (*packed & 1) != 0;
        auto script = r.var_bytes(1 << 16);
        if (!script) return util::Unexpected{script.error()};
        coin.lock_script = std::move(*script);
        return coin;
    }

    [[nodiscard]] util::Bytes encode() const {
        util::Writer w(16 + lock_script.size());
        serialize(w);
        return w.take();
    }

    friend bool operator==(const Coin&, const Coin&) = default;
};

}  // namespace ebv::chain
