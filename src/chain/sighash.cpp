#include "chain/sighash.hpp"

#include "crypto/ecdsa.hpp"
#include "crypto/parse_memo.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace ebv::chain {

namespace {

/// Analytic preimage size so the Writer allocates exactly once.
std::size_t sighash_preimage_size(const Transaction& tx, util::ByteSpan script_code) {
    std::size_t size = 4 /* version */ + util::compact_size_length(tx.vin.size()) +
                       41 * (tx.vin.size() - 1)  /* blanked inputs */
                       + 40 + util::compact_size_length(script_code.size()) +
                       script_code.size()  /* the signed input */
                       + util::compact_size_length(tx.vout.size()) + 4 /* locktime */ +
                       4 /* hash type */;
    for (const TxOut& out : tx.vout)
        size += 8 + util::compact_size_length(out.lock_script.size()) + out.lock_script.size();
    return size;
}

}  // namespace

crypto::Hash256 signature_hash(const Transaction& tx, std::size_t input_index,
                               util::ByteSpan script_code, SigHashType type) {
    EBV_EXPECTS(input_index < tx.vin.size());

    util::Writer w(sighash_preimage_size(tx, script_code));
    w.u32(tx.version);
    w.compact_size(tx.vin.size());
    for (std::size_t i = 0; i < tx.vin.size(); ++i) {
        tx.vin[i].prevout.serialize(w);
        if (i == input_index) {
            w.var_bytes(script_code);
        } else {
            w.compact_size(0);  // blanked script
        }
        w.u32(tx.vin[i].sequence);
    }
    w.compact_size(tx.vout.size());
    for (const TxOut& out : tx.vout) {
        w.i64(out.value);
        w.var_bytes(out.lock_script);
    }
    w.u32(tx.locktime);
    w.u32(type);

    return crypto::hash256(w.data());
}

util::Bytes sign_input(const Transaction& tx, std::size_t input_index,
                       util::ByteSpan script_code, const crypto::PrivateKey& key,
                       SigHashType type) {
    const crypto::Hash256 digest = signature_hash(tx, input_index, script_code, type);
    util::Bytes sig = key.sign(digest).to_der();
    sig.push_back(static_cast<std::uint8_t>(type));
    return sig;
}

bool TransactionSignatureChecker::check_signature(util::ByteSpan signature,
                                                  util::ByteSpan pubkey,
                                                  util::ByteSpan script_code) const {
    if (signature.empty()) return false;

    const auto hash_type = static_cast<SigHashType>(signature.back());
    if (hash_type != kSigHashAll) return false;

    const auto sig = crypto::parse_signature_der_memo(signature.first(signature.size() - 1));
    if (!sig) return false;

    const auto key = crypto::parse_public_key_memo(pubkey);
    if (!key) return false;

    if (tpl_ == nullptr) {
        return key->verify(signature_hash(tx_, input_index_, script_code, hash_type),
                           *sig);
    }
    static obs::Counter& bytes_saved =
        obs::Registry::global().counter("ebv.crypto.sighash_bytes_saved");
    bytes_saved.inc(static_cast<std::uint64_t>(tpl_->prefix_skipped(input_index_)) +
                    tpl_->preimage_size(input_index_, script_code));
    return key->verify(tpl_->digest(input_index_, script_code, hash_type), *sig);
}

}  // namespace ebv::chain
