#include "chain/sighash.hpp"

#include "crypto/ecdsa.hpp"
#include "util/assert.hpp"

namespace ebv::chain {

crypto::Hash256 signature_hash(const Transaction& tx, std::size_t input_index,
                               util::ByteSpan script_code, SigHashType type) {
    EBV_EXPECTS(input_index < tx.vin.size());

    util::Writer w;
    w.u32(tx.version);
    w.compact_size(tx.vin.size());
    for (std::size_t i = 0; i < tx.vin.size(); ++i) {
        tx.vin[i].prevout.serialize(w);
        if (i == input_index) {
            w.var_bytes(script_code);
        } else {
            w.compact_size(0);  // blanked script
        }
        w.u32(tx.vin[i].sequence);
    }
    w.compact_size(tx.vout.size());
    for (const TxOut& out : tx.vout) {
        w.i64(out.value);
        w.var_bytes(out.lock_script);
    }
    w.u32(tx.locktime);
    w.u32(type);

    return crypto::hash256(w.data());
}

util::Bytes sign_input(const Transaction& tx, std::size_t input_index,
                       util::ByteSpan script_code, const crypto::PrivateKey& key,
                       SigHashType type) {
    const crypto::Hash256 digest = signature_hash(tx, input_index, script_code, type);
    util::Bytes sig = key.sign(digest).to_der();
    sig.push_back(static_cast<std::uint8_t>(type));
    return sig;
}

bool TransactionSignatureChecker::check_signature(util::ByteSpan signature,
                                                  util::ByteSpan pubkey,
                                                  util::ByteSpan script_code) const {
    if (signature.empty()) return false;

    const auto hash_type = static_cast<SigHashType>(signature.back());
    if (hash_type != kSigHashAll) return false;

    const auto sig = crypto::Signature::from_der(signature.first(signature.size() - 1));
    if (!sig) return false;

    const auto key = crypto::PublicKey::parse(pubkey);
    if (!key) return false;

    const crypto::Hash256 digest = signature_hash(tx_, input_index_, script_code, hash_type);
    return key->verify(digest, *sig);
}

}  // namespace ebv::chain
