#include "chain/reorg.hpp"

#include "util/assert.hpp"

namespace ebv::chain {

const char* to_string(ReorgError e) {
    switch (e) {
        case ReorgError::kNeedsBlockStore: return "node has no block/undo store";
        case ReorgError::kUnknownForkPoint: return "branch does not attach to the chain";
        case ReorgError::kBranchNotLonger: return "branch is not longer than the chain";
        case ReorgError::kRollbackFailed: return "rollback failed";
    }
    return "unknown reorg error";
}

util::Result<ReorgOutcome, ReorgError> reorg_to(BitcoinNode& node,
                                                const std::vector<Block>& branch) {
    if (node.block_store() == nullptr) return util::Unexpected{ReorgError::kNeedsBlockStore};
    if (branch.empty()) return util::Unexpected{ReorgError::kBranchNotLonger};

    // Locate the fork point. A zero prev-hash attaches before genesis.
    const crypto::Hash256& attach = branch[0].header.prev_hash;
    std::uint32_t fork_height_plus_1 = 0;  // first height to be replaced
    if (!attach.is_zero()) {
        const auto found = node.headers().find(attach);
        if (!found) return util::Unexpected{ReorgError::kUnknownForkPoint};
        fork_height_plus_1 = *found + 1;
    }

    const std::uint32_t current_height = node.next_height();
    const std::uint32_t branch_tip = fork_height_plus_1 +
                                     static_cast<std::uint32_t>(branch.size());
    if (branch_tip <= current_height) return util::Unexpected{ReorgError::kBranchNotLonger};

    // Save and verify the suffix being replaced *before* touching any
    // state: if the block store cannot reproduce the chain (external
    // truncation or tampering), a bad branch could never be rolled back.
    // Refusing up front leaves the node untouched.
    std::vector<Block> original;
    original.reserve(current_height - fork_height_plus_1);
    for (std::uint32_t h = fork_height_plus_1; h < current_height; ++h) {
        auto block = node.block_store()->load(h);
        const BlockHeader* expected = node.headers().at(h);
        if (!block || expected == nullptr || block->header.hash() != expected->hash()) {
            return util::Unexpected{ReorgError::kRollbackFailed};
        }
        original.push_back(std::move(*block));
    }

    ReorgOutcome outcome;
    outcome.fork_height = fork_height_plus_1 == 0 ? 0 : fork_height_plus_1 - 1;

    // Disconnect down to the fork point.
    while (node.next_height() > fork_height_plus_1) {
        const bool ok = node.disconnect_tip();
        EBV_ASSERT(ok);
        ++outcome.blocks_disconnected;
    }

    // Connect the branch; on failure, unwind and restore the original.
    for (const Block& block : branch) {
        auto result = node.submit_block(block);
        if (result) {
            ++outcome.blocks_connected;
            continue;
        }
        outcome.branch_failure = result.error();

        while (node.next_height() > fork_height_plus_1) {
            if (!node.disconnect_tip()) return util::Unexpected{ReorgError::kRollbackFailed};
        }
        for (const Block& old_block : original) {
            if (!node.submit_block(old_block)) {
                return util::Unexpected{ReorgError::kRollbackFailed};
            }
        }
        outcome.blocks_disconnected = 0;
        outcome.blocks_connected = 0;
        outcome.switched = false;
        return outcome;
    }

    outcome.switched = true;
    return outcome;
}

}  // namespace ebv::chain
