// Undo data: everything needed to disconnect a connected block — the coins
// its inputs consumed (Bitcoin Core's rev*.dat equivalent). Disconnection
// restores those coins and deletes the block's own outputs.
#pragma once

#include <vector>

#include "chain/block.hpp"
#include "chain/coin.hpp"

namespace ebv::chain {

struct TxUndo {
    /// Spent coins in input order.
    std::vector<Coin> spent_coins;

    void serialize(util::Writer& w) const {
        w.compact_size(spent_coins.size());
        for (const Coin& coin : spent_coins) coin.serialize(w);
    }

    static util::Result<TxUndo, util::DecodeError> deserialize(util::Reader& r) {
        auto count = r.compact_size();
        if (!count) return util::Unexpected{count.error()};
        if (*count > (1u << 16)) return util::Unexpected{util::DecodeError::kOversizedField};
        TxUndo undo;
        undo.spent_coins.reserve(static_cast<std::size_t>(*count));
        for (std::uint64_t i = 0; i < *count; ++i) {
            auto coin = Coin::deserialize(r);
            if (!coin) return util::Unexpected{coin.error()};
            undo.spent_coins.push_back(std::move(*coin));
        }
        return undo;
    }

    friend bool operator==(const TxUndo&, const TxUndo&) = default;
};

struct BlockUndo {
    /// One entry per non-coinbase transaction, in block order.
    std::vector<TxUndo> txs;

    void serialize(util::Writer& w) const {
        w.compact_size(txs.size());
        for (const TxUndo& tx : txs) tx.serialize(w);
    }

    static util::Result<BlockUndo, util::DecodeError> deserialize(util::Reader& r) {
        auto count = r.compact_size();
        if (!count) return util::Unexpected{count.error()};
        if (*count > (1u << 20)) return util::Unexpected{util::DecodeError::kOversizedField};
        BlockUndo undo;
        undo.txs.reserve(static_cast<std::size_t>(*count));
        for (std::uint64_t i = 0; i < *count; ++i) {
            auto tx = TxUndo::deserialize(r);
            if (!tx) return util::Unexpected{tx.error()};
            undo.txs.push_back(std::move(*tx));
        }
        return undo;
    }

    friend bool operator==(const BlockUndo&, const BlockUndo&) = default;
};

}  // namespace ebv::chain
