// The baseline block-validation pipeline (Fig 3 of the paper): for every
// input, ❶ Fetch the coin from the status database (EV+UV fused), then run
// ② SV; if the whole block verifies, ❸ Delete the spent entries and
// ❹ Insert the new outputs. Each phase is timed so benches can reproduce
// the paper's DBO / SV / others breakdown.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "chain/block.hpp"
#include "chain/params.hpp"
#include "chain/undo.hpp"
#include "chain/utxo_set.hpp"
#include "script/interpreter.hpp"
#include "util/result.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ebv::chain {

enum class BlockError {
    kEmptyBlock,
    kFirstTxNotCoinbase,
    kMultipleCoinbases,
    kMerkleRootMismatch,
    kDuplicateTxid,
    kTooManyOutputs,
    kMissingOrSpentOutput,  ///< ❶ Fetch returned nothing (EV or UV failure)
    kImmatureCoinbaseSpend,
    kValueOutOfRange,
    kNegativeFee,
    kCoinbaseValueTooHigh,
    kScriptFailure,  ///< ② SV failed
};

[[nodiscard]] const char* to_string(BlockError e);

struct ValidationFailure {
    BlockError error;
    std::size_t tx_index = 0;
    std::size_t input_index = 0;
    script::ScriptError script_error = script::ScriptError::kOk;

    [[nodiscard]] std::string describe() const;
};

/// Per-block timing breakdown, the unit of Figs 4a/4b/16a.
struct BlockTimings {
    util::TimeCost dbo;    ///< Fetch + Delete + Insert
    util::TimeCost sv;     ///< script validation
    util::TimeCost other;  ///< everything else (merkle, value rules, ...)
    std::size_t inputs = 0;
    std::size_t outputs = 0;

    [[nodiscard]] util::TimeCost total() const { return dbo + sv + other; }

    BlockTimings& operator+=(const BlockTimings& o) {
        dbo += o.dbo;
        sv += o.sv;
        other += o.other;
        inputs += o.inputs;
        outputs += o.outputs;
        return *this;
    }
};

struct ValidatorOptions {
    /// Skip SV entirely (used by workload calibration, never by benches
    /// that report SV time).
    bool verify_scripts = true;
    /// Run SV through a thread pool (nullptr = serial).
    util::ThreadPool* script_pool = nullptr;
};

/// Stateless validator over a UtxoSet; connect_block applies the block on
/// success and guarantees the set is untouched on failure.
class BitcoinValidator {
public:
    BitcoinValidator(const ChainParams& params, UtxoSet& utxo,
                     ValidatorOptions options = {})
        : params_(params), utxo_(utxo), options_(options) {}

    /// Validate and connect a block at `height`. On success returns the
    /// phase timings; on failure the UTXO set is left unchanged. When
    /// `undo` is non-null the spent coins are recorded for disconnection.
    /// Publishes per-stage histograms and per-block counters under
    /// `btc.block.*` and emits one span per stage (docs/OBSERVABILITY.md).
    util::Result<BlockTimings, ValidationFailure> connect_block(const Block& block,
                                                                std::uint32_t height,
                                                                BlockUndo* undo = nullptr);

    /// Reverse a previously connected block: delete its outputs from the
    /// UTXO set and restore the coins its inputs spent. The caller is
    /// responsible for passing the matching undo record.
    void disconnect_block(const Block& block, const BlockUndo& undo);

private:
    util::Result<BlockTimings, ValidationFailure> connect_block_impl(
        const Block& block, std::uint32_t height, BlockUndo* undo);

    const ChainParams& params_;
    UtxoSet& utxo_;
    ValidatorOptions options_;
};

}  // namespace ebv::chain
