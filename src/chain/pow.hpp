// Proof-of-work target handling: Bitcoin's compact "nBits" encoding, target
// comparison, and difficulty retargeting. The experiments never grind real
// work (the threat model's PoW assumptions are orthogonal to validation
// speed), but the consensus rules are implemented so headers carry honest
// difficulty semantics.
#pragma once

#include <cstdint>
#include <optional>

#include "chain/block.hpp"
#include "crypto/u256.hpp"

namespace ebv::chain {

/// Expand compact nBits into a 256-bit target. Returns nullopt for
/// negative/overflowing encodings (consensus-invalid).
std::optional<crypto::U256> expand_compact_target(std::uint32_t bits);

/// Compress a target into compact form (inverse of expand, canonical).
std::uint32_t compact_from_target(const crypto::U256& target);

/// Does the header hash meet its own declared target?
[[nodiscard]] bool check_proof_of_work(const BlockHeader& header);

/// Next-period target from the previous target and the actual timespan of
/// the closing period (Bitcoin's clamp-to-[expected/4, expected*4] rule).
crypto::U256 retarget(const crypto::U256& previous_target,
                      std::uint32_t actual_timespan_seconds,
                      std::uint32_t expected_timespan_seconds);

}  // namespace ebv::chain
