#include "chain/node.hpp"

#include "util/assert.hpp"

namespace ebv::chain {

BitcoinNode::BitcoinNode(const BitcoinNodeOptions& options) : options_(options) {
    if (options.data_dir.empty()) {
        store_ = std::make_unique<storage::MemKvStore>();
    } else {
        storage::DiskHashTable::Options db_options;
        db_options.cache_budget_bytes = options.memory_limit_bytes;
        db_options.device = options.device;
        auto disk =
            std::make_unique<storage::DiskHashTable>(options.data_dir + "/utxo.db", db_options);
        disk_store_ = disk.get();
        store_ = std::move(disk);
    }
    status_db_ = std::make_unique<storage::StatusDb>(*store_);
    utxo_ = std::make_unique<UtxoSet>(*status_db_);
    if (options.keep_blocks) {
        EBV_EXPECTS(!options.data_dir.empty());
        block_store_ = std::make_unique<storage::FlatStore<Block>>(options.data_dir +
                                                                   "/blocks.dat");
        undo_store_ = std::make_unique<storage::FlatStore<BlockUndo>>(options.data_dir +
                                                                      "/undo.dat");
    }
}

util::Result<BlockTimings, ValidationFailure> BitcoinNode::submit_block(const Block& block) {
    const std::uint32_t height = next_height();
    BitcoinValidator validator(options_.params, *utxo_, options_.validator);
    BlockUndo undo;
    auto result = validator.connect_block(block, height,
                                          undo_store_ ? &undo : nullptr);
    if (!result) return result;

    const bool linked = headers_.append(block.header);
    EBV_ENSURES(linked);
    if (block_store_) block_store_->append(block);
    if (undo_store_) undo_store_->append(undo);
    return result;
}

bool BitcoinNode::disconnect_tip() {
    if (headers_.empty() || !block_store_ || !undo_store_) return false;
    const std::uint32_t tip_height = headers_.height();

    const auto block = block_store_->load(tip_height);
    const auto undo = undo_store_->load(tip_height);
    if (!block || !undo) return false;
    if (block->header.hash() != headers_.tip_hash()) return false;

    BitcoinValidator validator(options_.params, *utxo_, options_.validator);
    validator.disconnect_block(*block, *undo);

    headers_.pop_tip();
    block_store_->truncate(tip_height);
    undo_store_->truncate(tip_height);
    return true;
}

std::uint64_t BitcoinNode::status_memory_bytes() const {
    if (disk_store_ == nullptr) return store_->payload_bytes();
    // For a disk-backed store the memory requirement is the cache budget
    // actually in use.
    return disk_store_->file_pages() * storage::PagedFile::kPageSize >
                   options_.memory_limit_bytes
               ? options_.memory_limit_bytes
               : disk_store_->file_pages() * storage::PagedFile::kPageSize;
}

}  // namespace ebv::chain
