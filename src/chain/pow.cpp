#include "chain/pow.hpp"

namespace ebv::chain {

std::optional<crypto::U256> expand_compact_target(std::uint32_t bits) {
    const std::uint32_t exponent = bits >> 24;
    std::uint32_t mantissa = bits & 0x007fffff;
    if (bits & 0x00800000) return std::nullopt;  // negative
    if (mantissa == 0) return crypto::U256::zero();

    crypto::U256 target;
    if (exponent <= 3) {
        mantissa >>= 8 * (3 - exponent);
        target.limbs[0] = mantissa;
        return target;
    }

    // target = mantissa * 256^(exponent - 3); reject overflow past 256 bits.
    const std::uint32_t shift_bytes = exponent - 3;
    if (shift_bytes > 29) return std::nullopt;
    const std::uint32_t shift_bits = shift_bytes * 8;
    const std::uint32_t limb = shift_bits / 64;
    const std::uint32_t offset = shift_bits % 64;
    target.limbs[limb] = static_cast<std::uint64_t>(mantissa) << offset;
    if (offset > 40 && limb + 1 < 4) {
        target.limbs[limb + 1] = static_cast<std::uint64_t>(mantissa) >> (64 - offset);
    }
    // Overflow check: mantissa bits spilling past limb 3.
    if (offset > 40 && limb == 3 &&
        (static_cast<std::uint64_t>(mantissa) >> (64 - offset)) != 0) {
        return std::nullopt;
    }
    return target;
}

std::uint32_t compact_from_target(const crypto::U256& target) {
    // Size = number of significant bytes.
    int size = 32;
    while (size > 0) {
        const int byte_index = size - 1;
        const std::uint64_t limb = target.limbs[byte_index / 8];
        if ((limb >> ((byte_index % 8) * 8)) & 0xff) break;
        --size;
    }
    if (size == 0) return 0;

    auto byte_at = [&](int index) -> std::uint32_t {
        if (index < 0 || index >= 32) return 0;
        return static_cast<std::uint32_t>(
            (target.limbs[index / 8] >> ((index % 8) * 8)) & 0xff);
    };

    std::uint32_t mantissa =
        byte_at(size - 1) << 16 | byte_at(size - 2) << 8 | byte_at(size - 3);
    // If the top bit would read as a sign, shift the mantissa down a byte.
    if (mantissa & 0x00800000) {
        mantissa >>= 8;
        ++size;
    }
    return (static_cast<std::uint32_t>(size) << 24) | mantissa;
}

bool check_proof_of_work(const BlockHeader& header) {
    const auto target = expand_compact_target(header.bits);
    if (!target || target->is_zero()) return false;

    // The header hash interpreted as a little-endian 256-bit integer uses
    // the display (reversed) byte order for comparison.
    const crypto::Hash256 hash = header.hash();
    crypto::U256 value;
    for (int i = 0; i < 32; ++i) {
        value.limbs[i / 8] |= static_cast<std::uint64_t>(hash.bytes()[i]) << ((i % 8) * 8);
    }
    return crypto::u256_less_equal(value, *target);
}

crypto::U256 retarget(const crypto::U256& previous_target,
                      std::uint32_t actual_timespan_seconds,
                      std::uint32_t expected_timespan_seconds) {
    // Clamp to [expected/4, expected*4], like Bitcoin.
    std::uint32_t timespan = actual_timespan_seconds;
    if (timespan < expected_timespan_seconds / 4) timespan = expected_timespan_seconds / 4;
    if (timespan > expected_timespan_seconds * 4) timespan = expected_timespan_seconds * 4;

    // new = previous * timespan / expected, in 512-bit intermediate space.
    std::uint64_t wide[8];
    crypto::u256_mul_wide(previous_target, crypto::U256::from_u64(timespan), wide);

    // Long division of the 512-bit value by `expected` (64-bit divisor).
    crypto::U256 result;
    unsigned __int128 remainder = 0;
    for (int limb = 7; limb >= 0; --limb) {
        const unsigned __int128 cur = (remainder << 64) | wide[limb];
        const std::uint64_t q = static_cast<std::uint64_t>(cur / expected_timespan_seconds);
        remainder = cur % expected_timespan_seconds;
        if (limb < 4) {
            result.limbs[limb] = q;
        }
        // Quotient bits above 256 are clamped to max target by the caller's
        // consensus rules; here we saturate.
        else if (q != 0) {
            for (auto& l : result.limbs) l = ~0ULL;
            return result;
        }
    }
    return result;
}

}  // namespace ebv::chain
