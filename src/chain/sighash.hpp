// Legacy signature-hash computation and the SignatureChecker the script VM
// uses when validating Bitcoin-style transactions.
#pragma once

#include <optional>

#include "chain/sighash_template.hpp"
#include "chain/transaction.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/hash_types.hpp"
#include "script/interpreter.hpp"

namespace ebv::chain {

enum SigHashType : std::uint8_t {
    kSigHashAll = 0x01,
};

/// The digest a signature over input `input_index` commits to: the
/// transaction with every input script blanked except this one, which
/// carries `script_code`, plus the 4-byte hash type.
crypto::Hash256 signature_hash(const Transaction& tx, std::size_t input_index,
                               util::ByteSpan script_code, SigHashType type);

/// Convenience: sign an input and return DER || hashtype byte, ready to be
/// pushed by an unlocking script.
util::Bytes sign_input(const Transaction& tx, std::size_t input_index,
                       util::ByteSpan script_code, const crypto::PrivateKey& key,
                       SigHashType type = kSigHashAll);

class TransactionSignatureChecker final : public script::SignatureChecker {
public:
    /// `tpl`, when given, is a shared per-transaction template (built once,
    /// reused across this tx's inputs — chain/validation.cpp builds one per
    /// tx in the parallel SV pass, where the transaction is immutable for
    /// the duration). Without one, the checker computes digests via the
    /// naive signature_hash each call: a caller-owned checker may outlive
    /// mutations of `tx`, so caching a serialization here would verify
    /// against stale bytes.
    TransactionSignatureChecker(const Transaction& tx, std::size_t input_index,
                                const SighashTemplate* tpl = nullptr)
        : tx_(tx), input_index_(input_index), tpl_(tpl) {}

    [[nodiscard]] bool check_signature(util::ByteSpan signature, util::ByteSpan pubkey,
                                       util::ByteSpan script_code) const override;

private:
    const Transaction& tx_;
    std::size_t input_index_;
    const SighashTemplate* tpl_;
};

}  // namespace ebv::chain
