// An outpoint names one output of one transaction: (txid, output index).
// Its 36-byte serialization is the key of the baseline UTXO set.
#pragma once

#include <compare>
#include <cstdint>

#include "crypto/hash_types.hpp"
#include "util/serialize.hpp"

namespace ebv::chain {

struct OutPoint {
    crypto::Hash256 txid;
    std::uint32_t index = 0;

    static constexpr std::uint32_t kNullIndex = 0xffffffff;

    /// The coinbase input's placeholder prevout.
    [[nodiscard]] bool is_null() const { return txid.is_zero() && index == kNullIndex; }
    static OutPoint null() { return OutPoint{crypto::Hash256{}, kNullIndex}; }

    void serialize(util::Writer& w) const {
        w.bytes(txid.span());
        w.u32(index);
    }

    static util::Result<OutPoint, util::DecodeError> deserialize(util::Reader& r) {
        auto hash_bytes = r.bytes(32);
        if (!hash_bytes) return util::Unexpected{hash_bytes.error()};
        auto idx = r.u32();
        if (!idx) return util::Unexpected{idx.error()};
        return OutPoint{crypto::Hash256::from_span(*hash_bytes), *idx};
    }

    /// The database key for this outpoint.
    [[nodiscard]] util::Bytes key() const {
        util::Writer w(36);
        serialize(w);
        return w.take();
    }

    friend auto operator<=>(const OutPoint&, const OutPoint&) = default;
};

struct OutPointHasher {
    std::size_t operator()(const OutPoint& o) const {
        return crypto::Hash256Hasher{}(o.txid) ^ (static_cast<std::size_t>(o.index) << 1);
    }
};

}  // namespace ebv::chain
