// In-memory header chain: height → header plus hash → height lookup. Both
// node types keep all headers resident (cheap: 80 bytes per block); EBV's
// Existence Validation reads Merkle roots from here.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"

namespace ebv::chain {

class HeaderIndex {
public:
    /// Append the next header; it must link to the current tip.
    /// Returns false (and leaves the index unchanged) on a broken link.
    bool append(const BlockHeader& header) {
        if (!headers_.empty() && header.prev_hash != tip_hash_) return false;
        if (headers_.empty() && !header.prev_hash.is_zero()) return false;
        tip_hash_ = header.hash();
        by_hash_.emplace(tip_hash_, headers_.size());
        headers_.push_back(header);
        return true;
    }

    [[nodiscard]] std::uint32_t height() const {
        return headers_.empty() ? 0 : static_cast<std::uint32_t>(headers_.size() - 1);
    }
    [[nodiscard]] std::size_t size() const { return headers_.size(); }
    [[nodiscard]] bool empty() const { return headers_.empty(); }

    [[nodiscard]] const BlockHeader* at(std::uint32_t height) const {
        return height < headers_.size() ? &headers_[height] : nullptr;
    }

    [[nodiscard]] std::optional<std::uint32_t> find(const crypto::Hash256& hash) const {
        const auto it = by_hash_.find(hash);
        if (it == by_hash_.end()) return std::nullopt;
        return static_cast<std::uint32_t>(it->second);
    }

    [[nodiscard]] const crypto::Hash256& tip_hash() const { return tip_hash_; }

    /// Remove the tip header (reorg support). No-op on an empty index.
    void pop_tip() {
        if (headers_.empty()) return;
        by_hash_.erase(tip_hash_);
        tip_hash_ = headers_.back().prev_hash;
        headers_.pop_back();
    }

    /// Bytes of memory the header chain occupies (Fig 14 excludes this, as
    /// does the paper — identical in both systems — but examples report it).
    [[nodiscard]] std::size_t memory_bytes() const {
        return headers_.size() * (sizeof(BlockHeader) + 48 /*hash map entry*/);
    }

private:
    std::vector<BlockHeader> headers_;
    std::unordered_map<crypto::Hash256, std::size_t, crypto::Hash256Hasher> by_hash_;
    crypto::Hash256 tip_hash_;
};

}  // namespace ebv::chain
