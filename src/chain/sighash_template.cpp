#include "chain/sighash_template.hpp"

#include <cstring>

#include "util/assert.hpp"
#include "util/endian.hpp"
#include "util/serialize.hpp"

namespace ebv::chain {

namespace {

void append_bytes(util::Bytes& b, util::ByteSpan data) {
    b.insert(b.end(), data.begin(), data.end());
}

void append_u32(util::Bytes& b, std::uint32_t v) {
    std::uint8_t tmp[4];
    util::store_le32(tmp, v);
    b.insert(b.end(), tmp, tmp + 4);
}

void append_i64(util::Bytes& b, std::int64_t v) {
    std::uint8_t tmp[8];
    util::store_le64(tmp, static_cast<std::uint64_t>(v));
    b.insert(b.end(), tmp, tmp + 8);
}

/// Writer::compact_size without a Writer; returns the encoded length.
std::size_t encode_compact_size(std::uint8_t out[9], std::uint64_t v) {
    if (v < 0xfd) {
        out[0] = static_cast<std::uint8_t>(v);
        return 1;
    }
    if (v <= 0xffff) {
        out[0] = 0xfd;
        util::store_le16(out + 1, static_cast<std::uint16_t>(v));
        return 3;
    }
    if (v <= 0xffffffff) {
        out[0] = 0xfe;
        util::store_le32(out + 1, static_cast<std::uint32_t>(v));
        return 5;
    }
    out[0] = 0xff;
    util::store_le64(out + 1, v);
    return 9;
}

void append_compact_size(util::Bytes& b, std::uint64_t v) {
    std::uint8_t tmp[9];
    b.insert(b.end(), tmp, tmp + encode_compact_size(tmp, v));
}

}  // namespace

SighashTemplateBuilder::SighashTemplateBuilder(std::uint32_t version, std::size_t input_count,
                                  std::size_t output_count, std::size_t size_hint) {
    if (size_hint == 0) {
        // Inputs dominate the blanked form: 36-byte prevout + 1-byte slot +
        // 4-byte sequence each; outputs are appended on top of the reserve.
        size_hint = 4 + util::compact_size_length(input_count) + 41 * input_count +
                    util::compact_size_length(output_count) + 4;
    }
    t_.base_.reserve(size_hint);
    t_.slots_.reserve(input_count);
    append_u32(t_.base_, version);
    append_compact_size(t_.base_, input_count);
}

void SighashTemplateBuilder::add_input(const OutPoint& prevout, std::uint32_t sequence) {
    append_bytes(t_.base_, prevout.txid.span());
    append_u32(t_.base_, prevout.index);
    t_.slots_.push_back(static_cast<std::uint32_t>(t_.base_.size()));
    t_.base_.push_back(0x00);  // blanked script: CompactSize(0)
    append_u32(t_.base_, sequence);
}

void SighashTemplateBuilder::begin_outputs(std::size_t output_count) {
    append_compact_size(t_.base_, output_count);
}

void SighashTemplateBuilder::add_output(const TxOut& out) {
    append_i64(t_.base_, out.value);
    append_compact_size(t_.base_, out.lock_script.size());
    append_bytes(t_.base_, out.lock_script);
}

SighashTemplate SighashTemplateBuilder::finish(std::uint32_t locktime) {
    append_u32(t_.base_, locktime);

    // One streaming pass over the shared prefix, capturing the compression
    // state at each input slot's 64-byte block boundary. Slots are strictly
    // increasing, so the boundaries are non-decreasing and the pass feeds
    // every byte exactly once — this is the O(tx_size) term.
    t_.midstates_.reserve(t_.slots_.size());
    crypto::Sha256 h;
    std::size_t fed = 0;
    for (const std::uint32_t slot : t_.slots_) {
        const std::size_t boundary = slot & ~std::size_t{63};
        h.update({t_.base_.data() + fed, boundary - fed});
        fed = boundary;
        t_.midstates_.push_back(h.midstate());
    }
    return std::move(t_);
}

SighashTemplate SighashTemplate::build(const Transaction& tx) {
    std::size_t size = 4 + util::compact_size_length(tx.vin.size()) + 41 * tx.vin.size() +
                       util::compact_size_length(tx.vout.size()) + 4;
    for (const TxOut& out : tx.vout)
        size += 8 + util::compact_size_length(out.lock_script.size()) + out.lock_script.size();

    Builder b(tx.version, tx.vin.size(), tx.vout.size(), size);
    for (const TxIn& in : tx.vin) b.add_input(in.prevout, in.sequence);
    b.begin_outputs(tx.vout.size());
    for (const TxOut& out : tx.vout) b.add_output(out);
    return b.finish(tx.locktime);
}

crypto::Hash256 SighashTemplate::digest(std::size_t input_index, util::ByteSpan script_code,
                                        std::uint8_t hash_type) const {
    EBV_EXPECTS(input_index < slots_.size());
    const std::size_t slot = slots_[input_index];
    const std::size_t boundary = slot & ~std::size_t{63};

    crypto::Sha256 h = crypto::Sha256::resume(midstates_[input_index]);
    h.update({base_.data() + boundary, slot - boundary});

    std::uint8_t len[9];
    h.update({len, encode_compact_size(len, script_code.size())});
    h.update(script_code);

    h.update({base_.data() + slot + 1, base_.size() - slot - 1});

    std::uint8_t tail[4];
    util::store_le32(tail, hash_type);
    h.update({tail, 4});

    const crypto::Sha256::Digest first = h.finalize();
    const crypto::Sha256::Digest second = crypto::Sha256::hash({first.data(), first.size()});
    return crypto::Hash256::from_span({second.data(), second.size()});
}

std::size_t SighashTemplate::preimage_size(std::size_t input_index,
                                           util::ByteSpan script_code) const {
    EBV_EXPECTS(input_index < slots_.size());
    // The blanked slot's single 0x00 is replaced by var_bytes(script_code).
    return base_.size() - 1 + util::compact_size_length(script_code.size()) +
           script_code.size() + 4;
}

void SighashTemplate::preimage(std::size_t input_index, util::ByteSpan script_code,
                               std::uint8_t hash_type, util::Bytes& out) const {
    EBV_EXPECTS(input_index < slots_.size());
    const std::size_t slot = slots_[input_index];
    out.clear();
    out.reserve(preimage_size(input_index, script_code));
    append_bytes(out, {base_.data(), slot});
    append_compact_size(out, script_code.size());
    append_bytes(out, script_code);
    append_bytes(out, {base_.data() + slot + 1, base_.size() - slot - 1});
    append_u32(out, hash_type);
}

}  // namespace ebv::chain
