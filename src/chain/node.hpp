// A baseline (Bitcoin-style) validator node: header index + UTXO set over a
// pluggable status database + the validation pipeline. This is the system
// the paper measures in Figs 4/5 and compares EBV against in Figs 14-18.
#pragma once

#include <memory>
#include <string>

#include "chain/header_index.hpp"
#include "chain/params.hpp"
#include "chain/utxo_set.hpp"
#include "chain/validation.hpp"
#include "storage/disk_hash_table.hpp"
#include "storage/flat_store.hpp"
#include "storage/mem_kvstore.hpp"

namespace ebv::chain {

struct BitcoinNodeOptions {
    ChainParams params = ChainParams::simnet();
    /// Directory for the status database and block files; empty = pure
    /// in-memory status store (no disk, no latency model).
    std::string data_dir;
    /// Status-database cache budget — the paper's "memory limit".
    std::size_t memory_limit_bytes = 500u << 20;
    storage::DeviceProfile device = storage::DeviceProfile::hdd();
    ValidatorOptions validator;
    /// Also persist block bodies (needed by nodes that serve proofs).
    bool keep_blocks = false;
};

class BitcoinNode {
public:
    explicit BitcoinNode(const BitcoinNodeOptions& options);

    /// Validate and connect the next block. Height is implied (tip + 1, or
    /// 0 for the first block).
    util::Result<BlockTimings, ValidationFailure> submit_block(const Block& block);

    /// Reorg support: disconnect the tip block, restoring the UTXO set from
    /// stored undo data. Requires keep_blocks (block + undo persistence).
    [[nodiscard]] bool disconnect_tip();

    [[nodiscard]] const HeaderIndex& headers() const { return headers_; }
    [[nodiscard]] UtxoSet& utxo() { return *utxo_; }
    [[nodiscard]] storage::StatusDb& status_db() { return *status_db_; }
    [[nodiscard]] storage::FlatStore<Block>* block_store() { return block_store_.get(); }
    [[nodiscard]] std::uint32_t next_height() const {
        return headers_.empty() ? 0 : headers_.height() + 1;
    }

    /// The memory the *status data* needs: resident cache for a disk store,
    /// full payload for an in-memory store. The paper's Fig 14 metric.
    [[nodiscard]] std::uint64_t status_memory_bytes() const;
    /// Full dataset size (what a node would need to hold it all in RAM).
    [[nodiscard]] std::uint64_t status_payload_bytes() const {
        return store_->payload_bytes();
    }

private:
    BitcoinNodeOptions options_;
    std::unique_ptr<storage::KvStore> store_;
    storage::DiskHashTable* disk_store_ = nullptr;  // non-owning view of store_
    std::unique_ptr<storage::StatusDb> status_db_;
    std::unique_ptr<UtxoSet> utxo_;
    std::unique_ptr<storage::FlatStore<Block>> block_store_;
    std::unique_ptr<storage::FlatStore<BlockUndo>> undo_store_;
    HeaderIndex headers_;
};

}  // namespace ebv::chain
