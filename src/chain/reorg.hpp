// Branch switching for the baseline node: atomically replace the chain's
// suffix with a longer competing branch, rolling back to the original
// branch if any block of the replacement fails validation. Builds on the
// undo/disconnect machinery; fork choice is longest-chain (all simulated
// blocks carry equal difficulty).
#pragma once

#include <vector>

#include "chain/node.hpp"
#include "util/result.hpp"

namespace ebv::chain {

enum class ReorgError {
    kNeedsBlockStore,   ///< node wasn't configured with keep_blocks
    kUnknownForkPoint,  ///< branch[0] doesn't attach to any known header
    kBranchNotLonger,   ///< replacement must strictly exceed the current tip
    kRollbackFailed,    ///< invariant failure while restoring (should not happen)
};

[[nodiscard]] const char* to_string(ReorgError e);

struct ReorgOutcome {
    /// Height of the last common block (the fork point).
    std::uint32_t fork_height = 0;
    std::uint32_t blocks_disconnected = 0;
    std::uint32_t blocks_connected = 0;
    /// False if the branch was invalid and the original chain was restored.
    bool switched = false;
    /// The rejection that stopped the branch (valid when !switched).
    ValidationFailure branch_failure{};
};

/// Attempt to switch to `branch`, whose first block must link to a header
/// currently in the chain. On a validation failure inside the branch the
/// original suffix is restored and `switched == false` is returned (the
/// call is then a no-op overall).
util::Result<ReorgOutcome, ReorgError> reorg_to(BitcoinNode& node,
                                                const std::vector<Block>& branch);

}  // namespace ebv::chain
