#include "chain/utxo_set.hpp"

namespace ebv::chain {

std::optional<Coin> UtxoSet::fetch(const OutPoint& outpoint) {
    const auto value = db_.fetch(outpoint.key());
    if (!value) return std::nullopt;
    util::Reader r(*value);
    auto coin = Coin::deserialize(r);
    if (!coin) return std::nullopt;  // corrupt entry reads as absent
    return *coin;
}

bool UtxoSet::spend(const OutPoint& outpoint) { return db_.erase(outpoint.key()); }

void UtxoSet::add(const OutPoint& outpoint, const Coin& coin) {
    db_.insert(outpoint.key(), coin.encode());
}

}  // namespace ebv::chain
