// Bitcoin-style transactions: inputs spend prior outputs via unlocking
// scripts; outputs carry values guarded by locking scripts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/amount.hpp"
#include "chain/outpoint.hpp"
#include "script/script.hpp"
#include "util/serialize.hpp"

namespace ebv::chain {

struct TxIn {
    OutPoint prevout;
    script::Script unlock_script;  ///< Us in the paper
    std::uint32_t sequence = 0xffffffff;

    friend bool operator==(const TxIn&, const TxIn&) = default;
};

struct TxOut {
    Amount value = 0;
    script::Script lock_script;  ///< Ls in the paper

    friend bool operator==(const TxOut&, const TxOut&) = default;
};

class Transaction {
public:
    std::uint32_t version = 1;
    std::vector<TxIn> vin;
    std::vector<TxOut> vout;
    std::uint32_t locktime = 0;

    /// A coinbase mints new coins: a single input with a null prevout.
    [[nodiscard]] bool is_coinbase() const {
        return vin.size() == 1 && vin[0].prevout.is_null();
    }

    void serialize(util::Writer& w) const;
    static util::Result<Transaction, util::DecodeError> deserialize(util::Reader& r);

    /// double-SHA256 of the serialization; cached after first computation.
    [[nodiscard]] const crypto::Hash256& txid() const;
    /// Drop the cached txid after mutating the transaction.
    void invalidate_cache() { txid_cache_.reset(); }

    /// Fill the txid caches of every transaction through the batched
    /// double-SHA256 path (already-cached entries are skipped). Miners and
    /// Merkle-leaf construction call this before per-tx txid() lookups.
    static void prime_txids(const std::vector<Transaction>& txs);

    [[nodiscard]] std::size_t serialized_size() const;
    [[nodiscard]] Amount total_output_value() const;

    friend bool operator==(const Transaction& a, const Transaction& b) {
        return a.version == b.version && a.vin == b.vin && a.vout == b.vout &&
               a.locktime == b.locktime;
    }

private:
    mutable std::optional<crypto::Hash256> txid_cache_;
};

}  // namespace ebv::chain
