// Block assembly: package transactions under a header whose Merkle root
// commits to them. Proof-of-work grinding is optional (off for experiments;
// the threat model's PoW assumptions are orthogonal to block validation).
#pragma once

#include <cstdint>
#include <vector>

#include "chain/block.hpp"
#include "chain/params.hpp"

namespace ebv::chain {

struct MinerOptions {
    /// If nonzero, grind the nonce until the hash has this many leading
    /// zero bits (toy difficulty for examples that want real PoW).
    unsigned pow_leading_zero_bits = 0;
};

/// Assemble a block: coinbase first, then `txs`, header linked to
/// `prev_hash` with the computed Merkle root.
Block assemble_block(const crypto::Hash256& prev_hash, Transaction coinbase,
                     std::vector<Transaction> txs, std::uint32_t time,
                     const MinerOptions& options = {});

/// Build a coinbase paying `reward` to `lock_script`. `height` is embedded
/// in the unlocking script so coinbases at different heights have distinct
/// txids (BIP34's purpose).
Transaction make_coinbase(std::uint32_t height, Amount reward,
                          const script::Script& lock_script,
                          std::uint32_t extra_nonce = 0);

/// Check the toy PoW rule used by MinerOptions.
[[nodiscard]] bool check_pow(const BlockHeader& header, unsigned leading_zero_bits);

}  // namespace ebv::chain
