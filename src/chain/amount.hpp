// Monetary amounts in the smallest unit (satoshi-like), with the range
// sanity check every consensus path applies.
#pragma once

#include <cstdint>

namespace ebv::chain {

using Amount = std::int64_t;

inline constexpr Amount kCoin = 100'000'000;
/// 21 million coins, the hard supply cap.
inline constexpr Amount kMaxMoney = 21'000'000 * kCoin;

[[nodiscard]] inline constexpr bool money_range(Amount value) {
    return value >= 0 && value <= kMaxMoney;
}

}  // namespace ebv::chain
