// Monetary amounts in the smallest unit (satoshi-like), with the range
// sanity check every consensus path applies.
#pragma once

#include <cstdint>

namespace ebv::chain {

using Amount = std::int64_t;

inline constexpr Amount kCoin = 100'000'000;
/// 21 million coins, the hard supply cap.
inline constexpr Amount kMaxMoney = 21'000'000 * kCoin;

[[nodiscard]] inline constexpr bool money_range(Amount value) {
    return value >= 0 && value <= kMaxMoney;
}

/// Overflow-safe accumulation for consensus sums (input values, fees):
/// adds `value` into `sum` only when the value and the running total both
/// stay inside [0, kMaxMoney]. Per-output range checks alone don't bound
/// the sum — a transaction can reference enough maximal outputs to wrap a
/// 64-bit total — so every consensus path accumulates through this guard.
/// The intermediate `sum + value` cannot overflow: both operands are
/// capped at kMaxMoney (~2^51) by the checks.
[[nodiscard]] inline constexpr bool add_money(Amount& sum, Amount value) {
    if (!money_range(value) || !money_range(sum)) return false;
    sum += value;
    return money_range(sum);
}

}  // namespace ebv::chain
