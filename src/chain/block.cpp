#include "chain/block.hpp"

namespace ebv::chain {

void BlockHeader::serialize(util::Writer& w) const {
    w.u32(version);
    w.bytes(prev_hash.span());
    w.bytes(merkle_root.span());
    w.u32(time);
    w.u32(bits);
    w.u32(nonce);
}

util::Result<BlockHeader, util::DecodeError> BlockHeader::deserialize(util::Reader& r) {
    BlockHeader h;
    auto version = r.u32();
    if (!version) return util::Unexpected{version.error()};
    h.version = *version;

    auto prev = r.bytes(32);
    if (!prev) return util::Unexpected{prev.error()};
    h.prev_hash = crypto::Hash256::from_span(*prev);

    auto root = r.bytes(32);
    if (!root) return util::Unexpected{root.error()};
    h.merkle_root = crypto::Hash256::from_span(*root);

    auto time = r.u32();
    if (!time) return util::Unexpected{time.error()};
    h.time = *time;

    auto bits = r.u32();
    if (!bits) return util::Unexpected{bits.error()};
    h.bits = *bits;

    auto nonce = r.u32();
    if (!nonce) return util::Unexpected{nonce.error()};
    h.nonce = *nonce;
    return h;
}

crypto::Hash256 BlockHeader::hash() const {
    util::Writer w(kSerializedSize);
    serialize(w);
    return crypto::hash256(w.data());
}

void Block::serialize(util::Writer& w) const {
    header.serialize(w);
    w.compact_size(txs.size());
    for (const Transaction& tx : txs) tx.serialize(w);
}

util::Result<Block, util::DecodeError> Block::deserialize(util::Reader& r) {
    Block block;
    auto header = BlockHeader::deserialize(r);
    if (!header) return util::Unexpected{header.error()};
    block.header = *header;

    auto count = r.compact_size();
    if (!count) return util::Unexpected{count.error()};
    if (*count > (1u << 20)) return util::Unexpected{util::DecodeError::kOversizedField};
    block.txs.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
        auto tx = Transaction::deserialize(r);
        if (!tx) return util::Unexpected{tx.error()};
        block.txs.push_back(std::move(*tx));
    }
    return block;
}

std::vector<crypto::Hash256> Block::merkle_leaves() const {
    Transaction::prime_txids(txs);
    std::vector<crypto::Hash256> leaves;
    leaves.reserve(txs.size());
    for (const Transaction& tx : txs) leaves.push_back(tx.txid());
    return leaves;
}

crypto::Hash256 Block::compute_merkle_root() const {
    return crypto::merkle_root(merkle_leaves());
}

std::size_t Block::serialized_size() const {
    util::Writer w;
    serialize(w);
    return w.size();
}

std::size_t Block::input_count() const {
    std::size_t count = 0;
    for (const Transaction& tx : txs) {
        if (!tx.is_coinbase()) count += tx.vin.size();
    }
    return count;
}

std::size_t Block::output_count() const {
    std::size_t count = 0;
    for (const Transaction& tx : txs) count += tx.vout.size();
    return count;
}

}  // namespace ebv::chain
