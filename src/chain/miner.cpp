#include "chain/miner.hpp"

#include "script/script.hpp"

namespace ebv::chain {

bool check_pow(const BlockHeader& header, unsigned leading_zero_bits) {
    if (leading_zero_bits == 0) return true;
    const crypto::Hash256 hash = header.hash();
    unsigned zeros = 0;
    // Count from the display-order top (last bytes of the little-endian
    // internal representation).
    for (int i = 31; i >= 0 && zeros < leading_zero_bits; --i) {
        const std::uint8_t b = hash.bytes()[static_cast<std::size_t>(i)];
        if (b == 0) {
            zeros += 8;
            continue;
        }
        for (int bit = 7; bit >= 0; --bit) {
            if (b & (1 << bit)) return zeros >= leading_zero_bits;
            ++zeros;
        }
    }
    return zeros >= leading_zero_bits;
}

Transaction make_coinbase(std::uint32_t height, Amount reward,
                          const script::Script& lock_script, std::uint32_t extra_nonce) {
    Transaction tx;
    tx.vin.push_back(TxIn{OutPoint::null(),
                          script::ScriptBuilder()
                              .push_int(static_cast<std::int64_t>(height))
                              .push_int(static_cast<std::int64_t>(extra_nonce))
                              .take(),
                          0xffffffff});
    tx.vout.push_back(TxOut{reward, lock_script});
    return tx;
}

Block assemble_block(const crypto::Hash256& prev_hash, Transaction coinbase,
                     std::vector<Transaction> txs, std::uint32_t time,
                     const MinerOptions& options) {
    Block block;
    block.txs.reserve(1 + txs.size());
    block.txs.push_back(std::move(coinbase));
    for (auto& tx : txs) block.txs.push_back(std::move(tx));

    block.header.prev_hash = prev_hash;
    block.header.merkle_root = block.compute_merkle_root();
    block.header.time = time;

    if (options.pow_leading_zero_bits > 0) {
        while (!check_pow(block.header, options.pow_leading_zero_bits)) {
            ++block.header.nonce;
        }
    }
    return block;
}

}  // namespace ebv::chain
