// Lightweight contract checks, in the spirit of the Core Guidelines'
// Expects/Ensures. These stay enabled in release builds: the validators in
// this library are security-relevant, so silently proceeding past a broken
// precondition is worse than aborting.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ebv::util {

[[noreturn]] inline void assertion_failure(const char* kind, const char* expr,
                                           const char* file, int line) {
    std::fprintf(stderr, "ebv: %s failed: %s at %s:%d\n", kind, expr, file, line);
    std::abort();
}

}  // namespace ebv::util

#define EBV_EXPECTS(cond)                                                          \
    do {                                                                           \
        if (!(cond))                                                               \
            ::ebv::util::assertion_failure("precondition", #cond, __FILE__, __LINE__); \
    } while (0)

#define EBV_ENSURES(cond)                                                          \
    do {                                                                           \
        if (!(cond))                                                               \
            ::ebv::util::assertion_failure("postcondition", #cond, __FILE__, __LINE__); \
    } while (0)

#define EBV_ASSERT(cond)                                                           \
    do {                                                                           \
        if (!(cond))                                                               \
            ::ebv::util::assertion_failure("assertion", #cond, __FILE__, __LINE__); \
    } while (0)
