// Canonical wire serialization: a Writer that appends to an owned buffer and
// a Reader that consumes a byte span. Variable-length integers use Bitcoin's
// CompactSize encoding so sizes match the real system's on-disk/on-wire cost.
#pragma once

#include <cstdint>
#include <string>

#include "util/endian.hpp"
#include "util/result.hpp"
#include "util/span.hpp"

namespace ebv::util {

class Writer {
public:
    Writer() = default;
    explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /// Bitcoin CompactSize: 1, 3, 5, or 9 bytes depending on magnitude.
    void compact_size(std::uint64_t v);

    void bytes(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

    /// CompactSize length prefix followed by the raw bytes.
    void var_bytes(ByteSpan data);

    [[nodiscard]] const Bytes& data() const { return buf_; }
    [[nodiscard]] Bytes take() { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    Bytes buf_;
};

/// Encoded length of Writer::compact_size(v): lets types compute analytic
/// serialized sizes without a throwaway serialization pass.
[[nodiscard]] constexpr std::size_t compact_size_length(std::uint64_t v) {
    if (v < 0xfd) return 1;
    if (v <= 0xffff) return 3;
    if (v <= 0xffffffff) return 5;
    return 9;
}

enum class DecodeError {
    kTruncated,       ///< input ended before the field completed
    kOversizedField,  ///< a length prefix exceeds the sanity limit
    kNonCanonical,    ///< a CompactSize used more bytes than needed
    kMalformed,       ///< a structural constraint of the type was violated
};

[[nodiscard]] std::string to_string(DecodeError e);

class Reader {
public:
    explicit Reader(ByteSpan data) : data_(data) {}

    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
    [[nodiscard]] bool empty() const { return remaining() == 0; }
    [[nodiscard]] std::size_t position() const { return pos_; }

    Result<std::uint8_t, DecodeError> u8();
    Result<std::uint16_t, DecodeError> u16();
    Result<std::uint32_t, DecodeError> u32();
    Result<std::uint64_t, DecodeError> u64();
    Result<std::int64_t, DecodeError> i64();
    Result<std::uint64_t, DecodeError> compact_size();

    /// Read exactly n raw bytes.
    Result<Bytes, DecodeError> bytes(std::size_t n);

    /// Read a CompactSize length prefix then that many bytes. The limit
    /// guards against hostile length prefixes allocating unbounded memory.
    Result<Bytes, DecodeError> var_bytes(std::size_t limit = 1u << 22);

private:
    [[nodiscard]] bool can_read(std::size_t n) const { return remaining() >= n; }
    const std::uint8_t* cursor() const { return data_.data() + pos_; }

    ByteSpan data_;
    std::size_t pos_ = 0;
};

}  // namespace ebv::util
