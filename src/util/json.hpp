// A minimal JSON value + recursive-descent parser, just enough to read the
// machine-readable artifacts this repo itself produces (EBV_BENCH_JSON
// documents, Chrome trace exports) without an external dependency. Used by
// bench::compare and the exporter-validity tests.
//
// Intentionally small: UTF-8 is passed through verbatim (no \uXXXX
// decoding beyond Latin-1), numbers are doubles, object keys keep
// insertion order and duplicate keys keep the first occurrence.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ebv::util::json {

class Value {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() = default;

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
    [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
    [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
    [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
    [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
    [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

    [[nodiscard]] bool as_bool() const { return bool_; }
    [[nodiscard]] double as_number() const { return number_; }
    [[nodiscard]] const std::string& as_string() const { return string_; }
    [[nodiscard]] const std::vector<Value>& as_array() const { return array_; }
    [[nodiscard]] const std::vector<std::pair<std::string, Value>>& as_object() const {
        return object_;
    }

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const Value* get(std::string_view key) const {
        if (type_ != Type::kObject) return nullptr;
        for (const auto& [k, v] : object_) {
            if (k == key) return &v;
        }
        return nullptr;
    }

    static Value null() { return Value{}; }
    static Value boolean(bool b) {
        Value v;
        v.type_ = Type::kBool;
        v.bool_ = b;
        return v;
    }
    static Value number(double d) {
        Value v;
        v.type_ = Type::kNumber;
        v.number_ = d;
        return v;
    }
    static Value string(std::string s) {
        Value v;
        v.type_ = Type::kString;
        v.string_ = std::move(s);
        return v;
    }
    static Value array(std::vector<Value> items) {
        Value v;
        v.type_ = Type::kArray;
        v.array_ = std::move(items);
        return v;
    }
    static Value object(std::vector<std::pair<std::string, Value>> members) {
        Value v;
        v.type_ = Type::kObject;
        v.object_ = std::move(members);
        return v;
    }

private:
    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

/// Parse one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). nullopt on any syntax error.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

}  // namespace ebv::util::json
