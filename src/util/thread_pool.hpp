// A small owned thread pool used for parallel script validation (the
// paper's SV step dominates EBV's remaining cost; Bitcoin Core parallelizes
// exactly this). Work is submitted as ranges, MPI/OpenMP-style: the caller
// partitions, the pool executes, parallel_for is a barrier.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ebv::util {

class ThreadPool {
public:
    /// threads == 0 selects hardware_concurrency (min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

    /// Run body(i) for i in [0, n), partitioned into contiguous chunks
    /// across the pool plus the calling thread. Blocks until all complete.
    /// Exceptions thrown by body are rethrown on the caller (first one wins).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

private:
    void submit(std::function<void()> task);
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

}  // namespace ebv::util
