// A low-overhead owned thread pool for the parallel proof-checking pipeline
// (fused EV+SV) and parallel script validation. Work is submitted as index
// ranges, OpenMP-style: the caller publishes one job, persistent workers
// claim contiguous chunks off a shared atomic counter, and parallel_for is
// a barrier. There is no per-task allocation and no task queue: one job
// descriptor lives in the pool and is broadcast by bumping a generation
// counter.
//
// Determinism note: the pool itself makes no ordering promises — chunks run
// in whatever order threads claim them. Callers that need deterministic
// results (the EBV validator's failure reporting) must resolve them from
// per-index results after the barrier; see docs/PARALLELISM.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ebv::util {

/// Non-owning reference to a callable. parallel_for is synchronous, so the
/// referenced callable only needs to outlive the call — a temporary lambda
/// argument is fine. Avoids std::function's possible heap allocation on the
/// submission path.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
public:
    template <typename F,
              std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef>, int> = 0>
    FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...);
          }) {}

    R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

private:
    void* obj_;
    R (*call_)(void*, Args...);
};

/// Cooperative early-exit flag. Checked by the pool between chunks: once
/// cancelled, remaining chunks are claimed but their bodies are skipped, so
/// parallel_for still returns promptly (and deterministically terminates).
class CancelToken {
public:
    void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelled() const noexcept {
        return cancelled_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

private:
    std::atomic<bool> cancelled_{false};
};

/// Cumulative pool counters (relaxed atomics; snapshot via stats()).
/// `steal_wait_ns` is the time submitting threads spent blocked after
/// finishing their own chunks, waiting for workers to drain the rest — a
/// straggler/load-imbalance indicator (exported as `ebv.pool.steal_ns`).
/// `wakeup_ns` totals the queue latency between a job's publication and
/// each worker attaching to it (`wakeups` attachments observed), exported
/// as `ebv.pool.wakeup_ns` — scheduler/wakeup overhead the parallel region
/// pays before any chunk runs.
struct PoolStats {
    std::uint64_t parallel_fors = 0;
    std::uint64_t tasks = 0;  ///< chunks executed (across all threads)
    std::uint64_t steal_wait_ns = 0;
    std::uint64_t wakeup_ns = 0;
    std::uint64_t wakeups = 0;
};

/// Opaque two-word ambient context carried from a parallel_for's submitter
/// to the workers running its chunks. The pool itself attaches no meaning;
/// ebv::obs uses it to propagate the current trace span (trace id, span id)
/// so worker-side spans nest under the submitting thread's open span.
struct TaskContext {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

class ThreadPool {
public:
    /// threads == 0 selects hardware_concurrency (min 1). The calling
    /// thread participates in parallel_for, so `threads` is the total
    /// parallelism: N means the caller plus N-1 spawned workers.
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total execution slots: spawned workers + the calling thread.
    [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

    /// Run body(i) for i in [0, n), partitioned into chunks claimed off an
    /// atomic counter by the pool plus the calling thread. Blocks until all
    /// chunks complete. The first exception thrown by a body is rethrown on
    /// the caller (exactly once); remaining chunks are skipped. If `cancel`
    /// is provided and fires, chunks not yet started are skipped.
    /// Re-entrant calls (from inside a body) degrade to serial execution.
    void parallel_for(std::size_t n, FunctionRef<void(std::size_t)> body,
                      CancelToken* cancel = nullptr);

    /// As parallel_for, but body(slot, i) also receives the executing slot
    /// index in [0, thread_count()): slot 0 is the calling thread, slots
    /// 1..N-1 are pool workers. Each slot runs on exactly one thread at a
    /// time, so callers can keep per-slot partial results (timings, sums)
    /// without any synchronization.
    void parallel_for_slots(std::size_t n,
                            FunctionRef<void(std::size_t, std::size_t)> body,
                            CancelToken* cancel = nullptr);

    [[nodiscard]] PoolStats stats() const {
        return PoolStats{parallel_fors_.load(std::memory_order_relaxed),
                         tasks_.load(std::memory_order_relaxed),
                         steal_wait_ns_.load(std::memory_order_relaxed),
                         wakeup_ns_.load(std::memory_order_relaxed),
                         wakeups_.load(std::memory_order_relaxed)};
    }

    /// Cumulative busy time (ns spent inside chunk bodies) per execution
    /// slot — slot 0 is the submitting thread. Per-worker utilization over
    /// an interval is the delta divided by the interval's wall time.
    [[nodiscard]] std::vector<std::uint64_t> slot_busy_ns() const;

    /// Install process-wide ambient-context hooks: `capture` runs on the
    /// submitting thread at job publication; `swap` runs on each worker to
    /// install the captured context before its chunks (returning the
    /// previous context, restored afterwards). Pass nullptrs to clear.
    /// Intended to be called once from a static initializer (ebv::obs does
    /// this to propagate trace spans); not synchronized against running
    /// pools.
    static void set_task_context_hooks(TaskContext (*capture)(),
                                       TaskContext (*swap)(TaskContext));

private:
    /// Type-erased chunk invoker: run body over [begin, end) on `slot`.
    using Invoke = void (*)(void* ctx, std::size_t slot, std::size_t begin,
                            std::size_t end);

    /// The one in-flight job. Plain fields are written by the submitter
    /// under mutex_ while no worker is attached (workers_attached_ == 0)
    /// and read by workers after they observe the new generation under the
    /// same mutex, so they need no atomicity of their own.
    struct Job {
        Invoke invoke = nullptr;
        void* ctx = nullptr;
        std::size_t total = 0;
        std::size_t chunk = 1;
        CancelToken* cancel = nullptr;
        TaskContext task_context{};     ///< ambient context captured at submit
        std::int64_t submit_ns = 0;     ///< publication time (wakeup latency)
        std::atomic<std::size_t> next{0};       ///< first unclaimed index
        std::atomic<std::size_t> completed{0};  ///< indices claimed AND finished
        std::atomic<bool> has_error{false};
        std::exception_ptr error;  ///< first error; guarded by mutex_
    };

    void run(std::size_t n, Invoke invoke, void* ctx, CancelToken* cancel);
    void run_chunks(std::size_t slot);
    void worker_loop(std::size_t slot);

    std::vector<std::thread> workers_;
    std::mutex submit_mutex_;  ///< serializes concurrent submitters

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< workers: new generation or stop
    std::condition_variable done_cv_;  ///< submitter: completion / detach
    Job job_;
    std::uint64_t generation_ = 0;
    std::size_t workers_attached_ = 0;  ///< workers currently touching job_
    bool stopping_ = false;

    std::atomic<std::uint64_t> parallel_fors_{0};
    std::atomic<std::uint64_t> tasks_{0};
    std::atomic<std::uint64_t> steal_wait_ns_{0};
    std::atomic<std::uint64_t> wakeup_ns_{0};
    std::atomic<std::uint64_t> wakeups_{0};
    /// Busy ns per slot, index 0..thread_count()-1 (sized at construction).
    std::unique_ptr<std::atomic<std::uint64_t>[]> slot_busy_ns_;
};

}  // namespace ebv::util
