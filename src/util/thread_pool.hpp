// A low-overhead owned thread pool for the parallel proof-checking pipeline
// (fused EV+SV) and parallel script validation. Work is submitted as index
// ranges, OpenMP-style: the caller publishes one job, persistent workers
// execute it, and parallel_for is a barrier. There is no per-task
// allocation and no central task queue: one job descriptor lives in the
// pool and is broadcast by bumping a generation counter.
//
// Two schedulers distribute a job's [0, n) index space (EBV_SCHEDULER):
//
//  * `steal` (default) — each slot owns a bounded Chase–Lev deque
//    (util::StealDeque) seeded with one contiguous span of [0, n). Owners
//    pop LIFO and split ranges in half down to a chunk floor; idle workers
//    steal FIFO halves from victims chosen by randomized probing, with
//    exponential backoff (pause → yield → micro-sleep parking) between
//    failed sweeps. Contiguous per-slot spans preserve cache locality for
//    the EV leaf-hash and sighash-template paths; stealing bounds the
//    straggler tail under skewed per-input cost.
//  * `counter` — the original shared atomic counter: workers claim
//    contiguous chunks off `fetch_add`. Kept as an A/B reference and used
//    automatically for jobs with n >= 2^32 (deque cells pack 32-bit
//    indices).
//
// Determinism note: neither scheduler makes ordering promises — ranges run
// in whatever order threads claim them. Callers that need deterministic
// results (the EBV validator's failure reporting) must resolve them from
// per-index results after the barrier; see docs/PARALLELISM.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/steal_deque.hpp"

namespace ebv::util {

/// Non-owning reference to a callable. parallel_for is synchronous, so the
/// referenced callable only needs to outlive the call — a temporary lambda
/// argument is fine. Avoids std::function's possible heap allocation on the
/// submission path.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
public:
    template <typename F,
              std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef>, int> = 0>
    FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...);
          }) {}

    R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

private:
    void* obj_;
    R (*call_)(void*, Args...);
};

/// Cooperative early-exit flag. Checked by the pool between chunks: once
/// cancelled, remaining chunks are claimed but their bodies are skipped, so
/// parallel_for still returns promptly (and deterministically terminates).
class CancelToken {
public:
    void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelled() const noexcept {
        return cancelled_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

private:
    std::atomic<bool> cancelled_{false};
};

/// Cumulative pool counters (relaxed atomics; snapshot via stats()).
/// `barrier_wait_ns` (exported as `ebv.pool.barrier_wait_ns`; named
/// steal_wait_ns before real steals existed) is the time submitting threads
/// spent blocked after finishing their own share, waiting for workers to
/// drain the rest — a straggler/load-imbalance indicator. `wakeup_ns`
/// totals the queue latency between a job's publication and each worker
/// attaching to it (`wakeups` attachments observed), exported as
/// `ebv.pool.wakeup_ns`. The stealing scheduler additionally reports
/// `local_pops` (ranges taken from the executing slot's own deque),
/// `steals` / `steal_attempts` (successful thefts / victim probes), and
/// `steal_ns` (time spent in the probing loop while out of local work,
/// exported as `ebv.pool.steal_ns`).
struct PoolStats {
    std::uint64_t parallel_fors = 0;
    std::uint64_t tasks = 0;  ///< chunks executed (across all threads)
    std::uint64_t barrier_wait_ns = 0;
    std::uint64_t wakeup_ns = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t local_pops = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t steal_ns = 0;
};

/// Opaque two-word ambient context carried from a parallel_for's submitter
/// to the workers running its chunks. The pool itself attaches no meaning;
/// ebv::obs uses it to propagate the current trace span (trace id, span id)
/// so worker-side spans nest under the submitting thread's open span.
struct TaskContext {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

enum class SchedulerMode {
    kCounter,  ///< shared-counter chunk claiming (pre-PR7 behaviour)
    kSteal,    ///< per-slot Chase–Lev deques with split-stealing
};

[[nodiscard]] const char* to_string(SchedulerMode mode) noexcept;

/// Process default from EBV_SCHEDULER ("counter" | "steal"); kSteal when
/// unset or unrecognized.
[[nodiscard]] SchedulerMode default_scheduler_mode() noexcept;

/// Process default from EBV_AFFINITY ("1"/"true"/"on" enable); off when
/// unset.
[[nodiscard]] bool default_affinity() noexcept;

class ThreadPool {
public:
    struct Options {
        /// 0 selects hardware_concurrency (min 1). The calling thread
        /// participates in parallel_for, so this is the total parallelism:
        /// N means the caller plus N-1 spawned workers.
        std::size_t threads = 0;
        /// Unset falls back to default_scheduler_mode() (EBV_SCHEDULER).
        std::optional<SchedulerMode> scheduler;
        /// Pin spawned workers to CPUs (slot s -> cpu s, modulo the CPUs
        /// available to the process; the calling thread is never pinned).
        /// Unset falls back to default_affinity() (EBV_AFFINITY). No-op
        /// where unsupported — see util/affinity.hpp.
        std::optional<bool> affinity;
    };

    explicit ThreadPool(Options options);
    explicit ThreadPool(std::size_t threads = 0) : ThreadPool(Options{threads, {}, {}}) {}
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total execution slots: spawned workers + the calling thread.
    [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

    [[nodiscard]] SchedulerMode scheduler() const { return scheduler_; }

    /// True when worker pinning was requested *and* every spawned worker
    /// was successfully pinned.
    [[nodiscard]] bool affinity_applied() const {
        return affinity_requested_ &&
               pins_applied_.load(std::memory_order_relaxed) == workers_.size();
    }

    /// Run body(i) for i in [0, n), partitioned across the pool plus the
    /// calling thread by the active scheduler. Blocks until all chunks
    /// complete. The first exception thrown by a body is rethrown on the
    /// caller (exactly once); remaining chunks are skipped. If `cancel` is
    /// provided and fires, chunks not yet started are skipped.
    /// Re-entrant calls (from inside a body) degrade to serial execution.
    void parallel_for(std::size_t n, FunctionRef<void(std::size_t)> body,
                      CancelToken* cancel = nullptr);

    /// As parallel_for, but body(slot, i) also receives the executing slot
    /// index in [0, thread_count()): slot 0 is the calling thread, slots
    /// 1..N-1 are pool workers. Each slot runs on exactly one thread at a
    /// time, so callers can keep per-slot partial results (timings, sums)
    /// without any synchronization.
    void parallel_for_slots(std::size_t n,
                            FunctionRef<void(std::size_t, std::size_t)> body,
                            CancelToken* cancel = nullptr);

    [[nodiscard]] PoolStats stats() const {
        return PoolStats{parallel_fors_.load(std::memory_order_relaxed),
                         tasks_.load(std::memory_order_relaxed),
                         barrier_wait_ns_.load(std::memory_order_relaxed),
                         wakeup_ns_.load(std::memory_order_relaxed),
                         wakeups_.load(std::memory_order_relaxed),
                         local_pops_.load(std::memory_order_relaxed),
                         steals_.load(std::memory_order_relaxed),
                         steal_attempts_.load(std::memory_order_relaxed),
                         steal_ns_.load(std::memory_order_relaxed)};
    }

    /// Cumulative busy time (ns spent inside chunk bodies) per execution
    /// slot — slot 0 is the submitting thread. Per-worker utilization over
    /// an interval is the delta divided by the interval's wall time.
    [[nodiscard]] std::vector<std::uint64_t> slot_busy_ns() const;

    /// Peak deque occupancy per slot during the most recent stealing-mode
    /// job (all zeros after counter-mode or serial runs) — the per-slot
    /// queue-depth gauge. Meaningful once the submitting parallel_for has
    /// returned; sampling mid-job reads are safe but racy.
    [[nodiscard]] std::vector<std::uint64_t> slot_queue_depth_peak() const;

    /// Install process-wide ambient-context hooks: `capture` runs on the
    /// submitting thread at job publication; `swap` runs on each worker to
    /// install the captured context before its chunks (returning the
    /// previous context, restored afterwards). Pass nullptrs to clear.
    /// Intended to be called once from a static initializer (ebv::obs does
    /// this to propagate trace spans); not synchronized against running
    /// pools.
    static void set_task_context_hooks(TaskContext (*capture)(),
                                       TaskContext (*swap)(TaskContext));

private:
    /// Type-erased chunk invoker: run body over [begin, end) on `slot`.
    using Invoke = void (*)(void* ctx, std::size_t slot, std::size_t begin,
                            std::size_t end);

    /// The one in-flight job. Plain fields are written by the submitter
    /// under mutex_ while no worker is attached (workers_attached_ == 0)
    /// and read by workers after they observe the new generation under the
    /// same mutex, so they need no atomicity of their own. The per-slot
    /// deques are seeded in the same quiescent window.
    struct Job {
        Invoke invoke = nullptr;
        void* ctx = nullptr;
        std::size_t total = 0;
        std::size_t chunk = 1;
        bool steal = false;  ///< stealing scheduler for this job?
        CancelToken* cancel = nullptr;
        TaskContext task_context{};     ///< ambient context captured at submit
        std::int64_t submit_ns = 0;     ///< publication time (wakeup latency)
        std::atomic<std::size_t> next{0};       ///< first unclaimed index (counter)
        std::atomic<std::size_t> completed{0};  ///< indices claimed AND finished
        std::atomic<bool> has_error{false};
        std::exception_ptr error;  ///< first error; guarded by mutex_
    };

    void run(std::size_t n, Invoke invoke, void* ctx, CancelToken* cancel);
    void run_chunks(std::size_t slot);
    void run_ranges(std::size_t slot);
    void worker_loop(std::size_t slot);

    std::vector<std::thread> workers_;
    std::mutex submit_mutex_;  ///< serializes concurrent submitters

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< workers: new generation or stop
    std::condition_variable done_cv_;  ///< submitter: completion / detach
    Job job_;
    std::uint64_t generation_ = 0;
    std::size_t workers_attached_ = 0;  ///< workers currently touching job_
    bool stopping_ = false;

    SchedulerMode scheduler_ = SchedulerMode::kSteal;
    bool affinity_requested_ = false;
    std::atomic<std::size_t> pins_applied_{0};
    /// One deque per slot (stealing scheduler), sized at construction.
    std::unique_ptr<StealDeque[]> deques_;

    std::atomic<std::uint64_t> parallel_fors_{0};
    std::atomic<std::uint64_t> tasks_{0};
    std::atomic<std::uint64_t> barrier_wait_ns_{0};
    std::atomic<std::uint64_t> wakeup_ns_{0};
    std::atomic<std::uint64_t> wakeups_{0};
    std::atomic<std::uint64_t> local_pops_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> steal_attempts_{0};
    std::atomic<std::uint64_t> steal_ns_{0};
    /// Busy ns per slot, index 0..thread_count()-1 (sized at construction).
    std::unique_ptr<std::atomic<std::uint64_t>[]> slot_busy_ns_;
    /// Peak deque depth per slot for the current/most recent stealing job.
    std::unique_ptr<std::atomic<std::uint64_t>[]> slot_queue_peak_;
};

}  // namespace ebv::util
