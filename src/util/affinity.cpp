#include "util/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ebv::util {

bool affinity_supported() noexcept {
#if defined(__linux__)
    return true;
#else
    return false;
#endif
}

unsigned affinity_cpu_count() noexcept {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof set, &set) == 0) {
        const int n = CPU_COUNT(&set);
        if (n > 0) return static_cast<unsigned>(n);
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

#if defined(__linux__)
namespace {

/// Resolve `cpu` to a concrete CPU id, indexing into the process affinity
/// mask (not raw CPU ids) so containers with a restricted cpuset still pin
/// correctly. Returns false when the mask cannot be read or is empty.
bool pin_handle(pthread_t handle, unsigned cpu) noexcept {
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof allowed, &allowed) != 0) return false;
    const int usable = CPU_COUNT(&allowed);
    if (usable <= 0) return false;
    unsigned want = cpu % static_cast<unsigned>(usable);
    int target = -1;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (!CPU_ISSET(c, &allowed)) continue;
        if (want == 0) {
            target = c;
            break;
        }
        --want;
    }
    if (target < 0) return false;
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(target, &one);
    return pthread_setaffinity_np(handle, sizeof one, &one) == 0;
}

}  // namespace
#endif

bool pin_current_thread(unsigned cpu) noexcept {
#if defined(__linux__)
    return pin_handle(pthread_self(), cpu);
#else
    (void)cpu;
    return false;
#endif
}

bool pin_thread(std::thread::native_handle_type handle, unsigned cpu) noexcept {
#if defined(__linux__)
    return pin_handle(handle, cpu);
#else
    (void)handle;
    (void)cpu;
    return false;
#endif
}

}  // namespace ebv::util
