#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "util/stopwatch.hpp"

namespace ebv::util {

namespace {

/// Set while a thread executes pool chunks; re-entrant parallel_for from a
/// body must not block on the submit mutex its outer call already holds.
thread_local bool t_inside_pool_work = false;

/// Ambient-context hooks (trace-span propagation). Written once at static
/// init (see obs/trace.cpp), read on every submit/attach.
TaskContext (*g_context_capture)() = nullptr;
TaskContext (*g_context_swap)(TaskContext) = nullptr;

std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

void ThreadPool::set_task_context_hooks(TaskContext (*capture)(),
                                        TaskContext (*swap)(TaskContext)) {
    g_context_capture = capture;
    g_context_swap = swap;
}

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    // The calling thread participates in parallel_for, so spawn one fewer.
    const std::size_t spawn = threads > 1 ? threads - 1 : 0;
    workers_.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i) {
        try {
            // Slot 0 is the submitting thread; workers take 1..spawn.
            workers_.emplace_back([this, slot = i + 1] { worker_loop(slot); });
        } catch (const std::system_error&) {
            // Restricted environments (containers, sandboxes) may refuse
            // thread creation; degrade to whatever parallelism we got —
            // parallel_for still runs everything on the calling thread.
            break;
        }
    }
    slot_busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(thread_count());
    for (std::size_t s = 0; s < thread_count(); ++s)
        slot_busy_ns_[s].store(0, std::memory_order_relaxed);
}

std::vector<std::uint64_t> ThreadPool::slot_busy_ns() const {
    std::vector<std::uint64_t> busy(thread_count());
    for (std::size_t s = 0; s < busy.size(); ++s)
        busy[s] = slot_busy_ns_[s].load(std::memory_order_relaxed);
    return busy;
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(std::size_t slot) {
    Job& job = job_;
    const bool was_inside = t_inside_pool_work;
    t_inside_pool_work = true;
    std::uint64_t chunks_run = 0;
    std::uint64_t busy_ns = 0;
    for (;;) {
        // Claim first, examine afterwards: a straggler attached to an
        // already-finished job touches only the atomics and leaves without
        // dereferencing ctx/cancel (which may belong to a caller that has
        // long since returned).
        const std::size_t begin = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
        if (begin >= job.total) break;
        const std::size_t end = std::min(begin + job.chunk, job.total);
        const bool skip = job.has_error.load(std::memory_order_relaxed) ||
                          (job.cancel != nullptr && job.cancel->cancelled());
        if (!skip) {
            try {
                Stopwatch chunk_watch;
                job.invoke(job.ctx, slot, begin, end);
                busy_ns += static_cast<std::uint64_t>(chunk_watch.elapsed_ns());
                ++chunks_run;
            } catch (...) {
                std::lock_guard lock(mutex_);
                if (!job.has_error.load(std::memory_order_relaxed)) {
                    job.error = std::current_exception();
                    job.has_error.store(true, std::memory_order_relaxed);
                }
            }
        }
        const std::size_t done_before =
            job.completed.fetch_add(end - begin, std::memory_order_acq_rel);
        if (done_before + (end - begin) == job.total) {
            // Completion must be signalled under the lock so the final
            // increment cannot slip between the submitter's predicate check
            // and its sleep.
            std::lock_guard lock(mutex_);
            done_cv_.notify_all();
        }
    }
    t_inside_pool_work = was_inside;
    if (chunks_run > 0) tasks_.fetch_add(chunks_run, std::memory_order_relaxed);
    if (busy_ns > 0)
        slot_busy_ns_[slot].fetch_add(busy_ns, std::memory_order_relaxed);
}

void ThreadPool::worker_loop(std::size_t slot) {
    std::uint64_t seen_generation = 0;
    for (;;) {
        TaskContext token{};
        {
            std::unique_lock lock(mutex_);
            work_cv_.wait(lock, [&] {
                return stopping_ || generation_ != seen_generation;
            });
            if (stopping_) return;
            seen_generation = generation_;
            ++workers_attached_;
            token = job_.task_context;
            const std::int64_t waited = steady_now_ns() - job_.submit_ns;
            if (waited > 0)
                wakeup_ns_.fetch_add(static_cast<std::uint64_t>(waited),
                                     std::memory_order_relaxed);
            wakeups_.fetch_add(1, std::memory_order_relaxed);
        }
        // Install the submitter's ambient context (trace span) around this
        // job's chunks so spans recorded inside nest under it causally.
        TaskContext prev{};
        if (g_context_swap != nullptr) prev = g_context_swap(token);
        run_chunks(slot);
        if (g_context_swap != nullptr) g_context_swap(prev);
        {
            std::lock_guard lock(mutex_);
            --workers_attached_;
            if (workers_attached_ == 0) done_cv_.notify_all();
        }
    }
}

void ThreadPool::run(std::size_t n, Invoke invoke, void* ctx, CancelToken* cancel) {
    if (n == 0) return;
    parallel_fors_.fetch_add(1, std::memory_order_relaxed);

    // Serial fast path: no workers, trivially small jobs, or a re-entrant
    // call from inside a body (blocking on submit_mutex_ there would
    // deadlock against our own outer barrier). Still chunked so a
    // CancelToken fired from inside the body stops the remaining chunks.
    if (workers_.empty() || n == 1 || t_inside_pool_work) {
        const std::size_t chunk = std::max<std::size_t>(1, n / 8);
        Stopwatch serial_watch;
        for (std::size_t begin = 0; begin < n; begin += chunk) {
            if (cancel != nullptr && cancel->cancelled()) break;
            invoke(ctx, 0, begin, std::min(begin + chunk, n));  // may throw
            tasks_.fetch_add(1, std::memory_order_relaxed);
        }
        slot_busy_ns_[0].fetch_add(static_cast<std::uint64_t>(serial_watch.elapsed_ns()),
                                   std::memory_order_relaxed);
        return;
    }

    std::lock_guard submit_lock(submit_mutex_);
    {
        std::unique_lock lock(mutex_);
        // Wait out stragglers from the previous generation before rewriting
        // the job descriptor they may still be reading.
        done_cv_.wait(lock, [&] { return workers_attached_ == 0; });
        job_.invoke = invoke;
        job_.ctx = ctx;
        job_.total = n;
        // Dynamic scheduling in smallish chunks: per-item costs (script
        // validation, Merkle folds) are highly non-uniform, so static
        // partitioning would straggle.
        job_.chunk = std::max<std::size_t>(1, n / (thread_count() * 8));
        job_.cancel = cancel;
        job_.next.store(0, std::memory_order_relaxed);
        job_.completed.store(0, std::memory_order_relaxed);
        job_.has_error.store(false, std::memory_order_relaxed);
        job_.error = nullptr;
        job_.task_context =
            g_context_capture != nullptr ? g_context_capture() : TaskContext{};
        job_.submit_ns = steady_now_ns();
        ++generation_;
    }
    work_cv_.notify_all();

    run_chunks(/*slot=*/0);

    std::exception_ptr error;
    {
        Stopwatch wait_watch;
        std::unique_lock lock(mutex_);
        done_cv_.wait(lock, [&] {
            return job_.completed.load(std::memory_order_acquire) >= job_.total;
        });
        const auto waited = wait_watch.elapsed_ns();
        if (waited > 0)
            steal_wait_ns_.fetch_add(static_cast<std::uint64_t>(waited),
                                     std::memory_order_relaxed);
        error = job_.error;
    }
    if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n, FunctionRef<void(std::size_t)> body,
                              CancelToken* cancel) {
    run(
        n,
        [](void* ctx, std::size_t, std::size_t begin, std::size_t end) {
            auto& f = *static_cast<FunctionRef<void(std::size_t)>*>(ctx);
            for (std::size_t i = begin; i < end; ++i) f(i);
        },
        &body, cancel);
}

void ThreadPool::parallel_for_slots(std::size_t n,
                                    FunctionRef<void(std::size_t, std::size_t)> body,
                                    CancelToken* cancel) {
    run(
        n,
        [](void* ctx, std::size_t slot, std::size_t begin, std::size_t end) {
            auto& f = *static_cast<FunctionRef<void(std::size_t, std::size_t)>*>(ctx);
            for (std::size_t i = begin; i < end; ++i) f(slot, i);
        },
        &body, cancel);
}

}  // namespace ebv::util
