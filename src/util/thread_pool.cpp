#include "util/thread_pool.hpp"

#include <atomic>
#include <memory>
#include <exception>

namespace ebv::util {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    // The calling thread participates in parallel_for, so spawn one fewer.
    const std::size_t spawn = threads > 1 ? threads - 1 : 0;
    workers_.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i) {
        try {
            workers_.emplace_back([this] { worker_loop(); });
        } catch (const std::system_error&) {
            // Restricted environments (containers, sandboxes) may refuse
            // thread creation; degrade to whatever parallelism we got —
            // parallel_for still runs everything on the calling thread.
            break;
        }
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    const std::size_t parts = std::min<std::size_t>(workers_.size() + 1, n);
    if (parts == 1) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }

    // Shared completion state: workers hold their own reference, so the
    // caller returning cannot destroy the condition variable out from under
    // a late notify.
    struct SharedState {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::size_t total;
        std::size_t chunk;
        const std::function<void(std::size_t)>* body;
        std::exception_ptr first_error;
        std::mutex mutex;
        std::condition_variable cv;
    };

    auto state = std::make_shared<SharedState>();
    state->total = n;
    // Dynamic scheduling in small chunks: script-validation costs per item
    // are highly non-uniform, so static partitioning would straggle.
    state->chunk = std::max<std::size_t>(1, n / (parts * 8));
    state->body = &body;

    auto run_chunks = [](const std::shared_ptr<SharedState>& s) {
        std::size_t completed = 0;
        for (;;) {
            const std::size_t begin = s->next.fetch_add(s->chunk);
            if (begin >= s->total) break;
            const std::size_t end = std::min(begin + s->chunk, s->total);
            try {
                for (std::size_t i = begin; i < end; ++i) (*s->body)(i);
            } catch (...) {
                std::lock_guard lock(s->mutex);
                if (!s->first_error) s->first_error = std::current_exception();
            }
            completed += end - begin;
        }
        if (completed > 0) {
            // Publish under the lock so the final increment cannot slip
            // between the waiter's predicate check and its sleep.
            std::lock_guard lock(s->mutex);
            s->done.fetch_add(completed);
            s->cv.notify_one();
        }
    };

    for (std::size_t p = 1; p < parts; ++p) {
        submit([state, run_chunks] { run_chunks(state); });
    }
    run_chunks(state);

    std::unique_lock lock(state->mutex);
    state->cv.wait(lock, [&] { return state->done.load() >= n; });

    if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace ebv::util
