#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>
#include <string_view>

#include "util/affinity.hpp"
#include "util/stopwatch.hpp"

namespace ebv::util {

namespace {

/// Set while a thread executes pool chunks; re-entrant parallel_for from a
/// body must not block on the submit mutex its outer call already holds.
thread_local bool t_inside_pool_work = false;

/// Ambient-context hooks (trace-span propagation). Written once at static
/// init (see obs/trace.cpp), read on every submit/attach.
TaskContext (*g_context_capture)() = nullptr;
TaskContext (*g_context_swap)(TaskContext) = nullptr;

std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/// Exponential backoff for an idle stealer: spin a growing number of pause
/// instructions, then yield the timeslice, then park in micro-sleeps. The
/// sleep rung matters on oversubscribed machines (and under TSAN), where a
/// spinning thief would starve the straggler it is waiting on; new work can
/// still appear at any time (a running peer splitting a range), so workers
/// never fully park mid-job — only between jobs, on the generation CV.
void backoff_pause(unsigned round) {
    if (round < 6) {
        for (unsigned i = 0; i < (1u << round); ++i) cpu_pause();
    } else if (round < 16) {
        std::this_thread::yield();
    } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

}  // namespace

const char* to_string(SchedulerMode mode) noexcept {
    return mode == SchedulerMode::kCounter ? "counter" : "steal";
}

SchedulerMode default_scheduler_mode() noexcept {
    const char* env = std::getenv("EBV_SCHEDULER");
    if (env != nullptr && std::string_view(env) == "counter")
        return SchedulerMode::kCounter;
    return SchedulerMode::kSteal;
}

bool default_affinity() noexcept {
    const char* env = std::getenv("EBV_AFFINITY");
    if (env == nullptr) return false;
    const std::string_view v(env);
    return v == "1" || v == "true" || v == "on" || v == "yes";
}

void ThreadPool::set_task_context_hooks(TaskContext (*capture)(),
                                        TaskContext (*swap)(TaskContext)) {
    g_context_capture = capture;
    g_context_swap = swap;
}

ThreadPool::ThreadPool(Options options) {
    std::size_t threads = options.threads;
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    scheduler_ = options.scheduler.value_or(default_scheduler_mode());
    affinity_requested_ = options.affinity.value_or(default_affinity());
    // The calling thread participates in parallel_for, so spawn one fewer.
    const std::size_t spawn = threads > 1 ? threads - 1 : 0;
    workers_.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i) {
        try {
            // Slot 0 is the submitting thread; workers take 1..spawn. The
            // caller is never pinned — it belongs to whoever called us.
            workers_.emplace_back([this, slot = i + 1] { worker_loop(slot); });
            // Pin from here (not from the worker) so affinity_applied() is
            // settled the moment the constructor returns.
            if (affinity_requested_ &&
                pin_thread(workers_.back().native_handle(),
                           static_cast<unsigned>(i + 1)))
                pins_applied_.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::system_error&) {
            // Restricted environments (containers, sandboxes) may refuse
            // thread creation; degrade to whatever parallelism we got —
            // parallel_for still runs everything on the calling thread.
            break;
        }
    }
    const std::size_t slots = thread_count();
    slot_busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    slot_queue_peak_ = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    deques_ = std::make_unique<StealDeque[]>(slots);
    for (std::size_t s = 0; s < slots; ++s) {
        slot_busy_ns_[s].store(0, std::memory_order_relaxed);
        slot_queue_peak_[s].store(0, std::memory_order_relaxed);
    }
}

std::vector<std::uint64_t> ThreadPool::slot_busy_ns() const {
    std::vector<std::uint64_t> busy(thread_count());
    for (std::size_t s = 0; s < busy.size(); ++s)
        busy[s] = slot_busy_ns_[s].load(std::memory_order_relaxed);
    return busy;
}

std::vector<std::uint64_t> ThreadPool::slot_queue_depth_peak() const {
    std::vector<std::uint64_t> peak(thread_count());
    for (std::size_t s = 0; s < peak.size(); ++s)
        peak[s] = slot_queue_peak_[s].load(std::memory_order_relaxed);
    return peak;
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(std::size_t slot) {
    Job& job = job_;
    const bool was_inside = t_inside_pool_work;
    t_inside_pool_work = true;
    std::uint64_t chunks_run = 0;
    std::uint64_t busy_ns = 0;
    for (;;) {
        // Claim first, examine afterwards: a straggler attached to an
        // already-finished job touches only the atomics and leaves without
        // dereferencing ctx/cancel (which may belong to a caller that has
        // long since returned).
        const std::size_t begin = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
        if (begin >= job.total) break;
        const std::size_t end = std::min(begin + job.chunk, job.total);
        const bool skip = job.has_error.load(std::memory_order_relaxed) ||
                          (job.cancel != nullptr && job.cancel->cancelled());
        if (!skip) {
            try {
                Stopwatch chunk_watch;
                job.invoke(job.ctx, slot, begin, end);
                busy_ns += static_cast<std::uint64_t>(chunk_watch.elapsed_ns());
                ++chunks_run;
            } catch (...) {
                std::lock_guard lock(mutex_);
                if (!job.has_error.load(std::memory_order_relaxed)) {
                    job.error = std::current_exception();
                    job.has_error.store(true, std::memory_order_relaxed);
                }
            }
        }
        const std::size_t done_before =
            job.completed.fetch_add(end - begin, std::memory_order_acq_rel);
        if (done_before + (end - begin) == job.total) {
            // Completion must be signalled under the lock so the final
            // increment cannot slip between the submitter's predicate check
            // and its sleep.
            std::lock_guard lock(mutex_);
            done_cv_.notify_all();
        }
    }
    t_inside_pool_work = was_inside;
    if (chunks_run > 0) tasks_.fetch_add(chunks_run, std::memory_order_relaxed);
    if (busy_ns > 0)
        slot_busy_ns_[slot].fetch_add(busy_ns, std::memory_order_relaxed);
}

void ThreadPool::run_ranges(std::size_t slot) {
    Job& job = job_;
    const bool was_inside = t_inside_pool_work;
    t_inside_pool_work = true;
    StealDeque& own = deques_[slot];
    const std::size_t nslots = thread_count();

    std::uint64_t chunks_run = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t pops = 0;
    std::uint64_t thefts = 0;
    std::uint64_t probes = 0;
    std::uint64_t probe_ns = 0;

    // Per-slot xorshift64 for randomized victim probing. Deterministic
    // seeding is fine — it only spreads contention, never affects results.
    std::uint64_t rng = 0x9E3779B97F4A7C15ull * (slot + 1) ^ 0xD1B54A32D192ED03ull;
    const auto next_random = [&rng]() noexcept {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    const auto retire = [&](std::size_t count) {
        const std::size_t done_before =
            job.completed.fetch_add(count, std::memory_order_acq_rel);
        if (done_before + count == job.total) {
            // Signalled under the lock for the same reason as run_chunks.
            std::lock_guard lock(mutex_);
            done_cv_.notify_all();
        }
    };

    // Run one claimed range: split it in half down to the chunk floor,
    // parking the upper halves in our own deque where peers can steal
    // them, then execute the remaining (cache-adjacent) piece. A cancelled
    // or errored job retires whole ranges without splitting so the barrier
    // releases as fast as the deques drain.
    const auto execute = [&](IndexRange r) {
        const bool skip = job.has_error.load(std::memory_order_relaxed) ||
                          (job.cancel != nullptr && job.cancel->cancelled());
        if (skip) {
            retire(r.size());
            return;
        }
        while (r.size() > job.chunk) {
            const std::uint32_t mid = r.begin + r.size() / 2;
            if (!own.push(IndexRange{mid, r.end})) break;  // full: run inline
            const std::uint64_t depth = own.size();
            if (depth > slot_queue_peak_[slot].load(std::memory_order_relaxed))
                slot_queue_peak_[slot].store(depth, std::memory_order_relaxed);
            r.end = mid;
        }
        try {
            Stopwatch chunk_watch;
            job.invoke(job.ctx, slot, r.begin, r.end);
            busy_ns += static_cast<std::uint64_t>(chunk_watch.elapsed_ns());
            ++chunks_run;
        } catch (...) {
            std::lock_guard lock(mutex_);
            if (!job.has_error.load(std::memory_order_relaxed)) {
                job.error = std::current_exception();
                job.has_error.store(true, std::memory_order_relaxed);
            }
        }
        retire(r.size());
    };

    unsigned backoff = 0;
    for (;;) {
        IndexRange r;
        if (own.pop(r)) {
            ++pops;
            backoff = 0;
            execute(r);
            continue;
        }
        // Out of local work. A straggler attached to an already-finished
        // job reaches this check with empty deques and leaves without
        // dereferencing ctx/cancel, mirroring run_chunks' claim-first rule.
        if (job.completed.load(std::memory_order_acquire) >= job.total) break;
        bool found = false;
        if (nslots > 1) {
            Stopwatch steal_watch;
            for (std::size_t probe = 0; probe < 4 * nslots && !found; ++probe) {
                const std::size_t victim = next_random() % nslots;
                if (victim == slot) continue;
                ++probes;
                if (deques_[victim].steal(r)) {
                    ++thefts;
                    found = true;
                }
            }
            probe_ns += static_cast<std::uint64_t>(steal_watch.elapsed_ns());
        }
        if (found) {
            backoff = 0;
            execute(r);
            continue;
        }
        if (job.completed.load(std::memory_order_acquire) >= job.total) break;
        backoff_pause(backoff++);
    }

    t_inside_pool_work = was_inside;
    if (chunks_run > 0) tasks_.fetch_add(chunks_run, std::memory_order_relaxed);
    if (busy_ns > 0)
        slot_busy_ns_[slot].fetch_add(busy_ns, std::memory_order_relaxed);
    if (pops > 0) local_pops_.fetch_add(pops, std::memory_order_relaxed);
    if (thefts > 0) steals_.fetch_add(thefts, std::memory_order_relaxed);
    if (probes > 0) steal_attempts_.fetch_add(probes, std::memory_order_relaxed);
    if (probe_ns > 0) steal_ns_.fetch_add(probe_ns, std::memory_order_relaxed);
}

void ThreadPool::worker_loop(std::size_t slot) {
    std::uint64_t seen_generation = 0;
    for (;;) {
        TaskContext token{};
        bool steal_job = false;
        {
            std::unique_lock lock(mutex_);
            work_cv_.wait(lock, [&] {
                return stopping_ || generation_ != seen_generation;
            });
            if (stopping_) return;
            seen_generation = generation_;
            ++workers_attached_;
            token = job_.task_context;
            steal_job = job_.steal;
            const std::int64_t waited = steady_now_ns() - job_.submit_ns;
            if (waited > 0)
                wakeup_ns_.fetch_add(static_cast<std::uint64_t>(waited),
                                     std::memory_order_relaxed);
            wakeups_.fetch_add(1, std::memory_order_relaxed);
        }
        // Install the submitter's ambient context (trace span) around this
        // job's chunks so spans recorded inside nest under it causally.
        TaskContext prev{};
        if (g_context_swap != nullptr) prev = g_context_swap(token);
        if (steal_job) {
            run_ranges(slot);
        } else {
            run_chunks(slot);
        }
        if (g_context_swap != nullptr) g_context_swap(prev);
        {
            std::lock_guard lock(mutex_);
            --workers_attached_;
            if (workers_attached_ == 0) done_cv_.notify_all();
        }
    }
}

void ThreadPool::run(std::size_t n, Invoke invoke, void* ctx, CancelToken* cancel) {
    if (n == 0) return;
    parallel_fors_.fetch_add(1, std::memory_order_relaxed);

    // Serial fast path: no workers, trivially small jobs, or a re-entrant
    // call from inside a body (blocking on submit_mutex_ there would
    // deadlock against our own outer barrier). Still chunked — with the
    // same granularity policy as the parallel path — so a CancelToken
    // fired from inside a nested region stops with comparable latency.
    if (workers_.empty() || n == 1 || t_inside_pool_work) {
        const std::size_t chunk =
            std::max<std::size_t>(1, n / (thread_count() * 8));
        Stopwatch serial_watch;
        for (std::size_t begin = 0; begin < n; begin += chunk) {
            if (cancel != nullptr && cancel->cancelled()) break;
            invoke(ctx, 0, begin, std::min(begin + chunk, n));  // may throw
            tasks_.fetch_add(1, std::memory_order_relaxed);
        }
        slot_busy_ns_[0].fetch_add(static_cast<std::uint64_t>(serial_watch.elapsed_ns()),
                                   std::memory_order_relaxed);
        return;
    }

    // Deque cells pack 32-bit indices; astronomically large jobs fall back
    // to the shared counter, which is size_t throughout.
    const bool use_steal =
        scheduler_ == SchedulerMode::kSteal &&
        n <= static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max());

    std::lock_guard submit_lock(submit_mutex_);
    {
        std::unique_lock lock(mutex_);
        // Wait out stragglers from the previous generation before rewriting
        // the job descriptor (and deques) they may still be reading.
        done_cv_.wait(lock, [&] { return workers_attached_ == 0; });
        job_.invoke = invoke;
        job_.ctx = ctx;
        job_.total = n;
        job_.steal = use_steal;
        job_.cancel = cancel;
        job_.next.store(0, std::memory_order_relaxed);
        job_.completed.store(0, std::memory_order_relaxed);
        job_.has_error.store(false, std::memory_order_relaxed);
        job_.error = nullptr;
        job_.task_context =
            g_context_capture != nullptr ? g_context_capture() : TaskContext{};
        const std::size_t slots = thread_count();
        if (use_steal) {
            // Finer floor than counter mode: local pops are contention-free,
            // so stealing can afford a granularity that bounds the straggler
            // tail at roughly one heavy item without a shared hot line.
            job_.chunk = std::max<std::size_t>(1, n / (slots * 64));
            // Seed each slot with one contiguous span of [0, n): locality
            // for the EV leaf-hash / sighash-template paths, and an even
            // static start that stealing then rebalances. The deques are
            // quiescent here (workers_attached_ == 0 and the previous job
            // completed), so these owner-side pushes cannot race.
            for (std::size_t s = 0; s < slots; ++s) {
                const std::uint64_t b = static_cast<std::uint64_t>(n) * s / slots;
                const std::uint64_t e = static_cast<std::uint64_t>(n) * (s + 1) / slots;
                if (e > b)
                    deques_[s].push(IndexRange{static_cast<std::uint32_t>(b),
                                               static_cast<std::uint32_t>(e)});
                slot_queue_peak_[s].store(e > b ? 1 : 0, std::memory_order_relaxed);
            }
        } else {
            job_.chunk = std::max<std::size_t>(1, n / (slots * 8));
            for (std::size_t s = 0; s < slots; ++s)
                slot_queue_peak_[s].store(0, std::memory_order_relaxed);
        }
        job_.submit_ns = steady_now_ns();
        ++generation_;
    }
    work_cv_.notify_all();

    if (use_steal) {
        run_ranges(/*slot=*/0);
    } else {
        run_chunks(/*slot=*/0);
    }

    std::exception_ptr error;
    {
        Stopwatch wait_watch;
        std::unique_lock lock(mutex_);
        done_cv_.wait(lock, [&] {
            return job_.completed.load(std::memory_order_acquire) >= job_.total;
        });
        const auto waited = wait_watch.elapsed_ns();
        if (waited > 0)
            barrier_wait_ns_.fetch_add(static_cast<std::uint64_t>(waited),
                                       std::memory_order_relaxed);
        error = job_.error;
    }
    if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n, FunctionRef<void(std::size_t)> body,
                              CancelToken* cancel) {
    run(
        n,
        [](void* ctx, std::size_t, std::size_t begin, std::size_t end) {
            auto& f = *static_cast<FunctionRef<void(std::size_t)>*>(ctx);
            for (std::size_t i = begin; i < end; ++i) f(i);
        },
        &body, cancel);
}

void ThreadPool::parallel_for_slots(std::size_t n,
                                    FunctionRef<void(std::size_t, std::size_t)> body,
                                    CancelToken* cancel) {
    run(
        n,
        [](void* ctx, std::size_t slot, std::size_t begin, std::size_t end) {
            auto& f = *static_cast<FunctionRef<void(std::size_t, std::size_t)>*>(ctx);
            for (std::size_t i = begin; i < end; ++i) f(slot, i);
        },
        &body, cancel);
}

}  // namespace ebv::util
