// Deterministic pseudo-random generator (xoshiro256**). Every stochastic
// component of the library (workload generator, latency model, network
// simulator) draws from an explicitly seeded Rng so experiments reproduce
// bit-for-bit across runs.
#pragma once

#include <cstdint>

#include "util/span.hpp"

namespace ebv::util {

class Rng {
public:
    /// Seeded via splitmix64 expansion of a single 64-bit seed.
    explicit Rng(std::uint64_t seed);

    /// Uniform 64-bit value.
    std::uint64_t next();

    /// Uniform in [0, bound) without modulo bias; bound must be > 0.
    std::uint64_t below(std::uint64_t bound);

    /// Uniform in [lo, hi] inclusive; requires lo <= hi.
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /// Uniform double in [0, 1).
    double uniform01();

    /// Bernoulli trial with probability p (clamped to [0,1]).
    bool chance(double p);

    /// Geometric-ish positive integer with the given mean (>= 1); used for
    /// count distributions (inputs per transaction, etc.).
    std::uint64_t geometric_at_least_one(double mean);

    /// Exponentially distributed double with the given mean.
    double exponential(double mean);

    /// Fill a buffer with random bytes.
    void fill(MutableByteSpan out);

private:
    std::uint64_t s_[4];
};

}  // namespace ebv::util
