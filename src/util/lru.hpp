// Intrusive-list LRU map with a caller-defined cost function, used by the
// storage layer's page cache (costs are bytes) and by small object caches
// (costs are entry counts).
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"

namespace ebv::util {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruMap {
public:
    using EvictionHandler = std::function<void(const K&, V&)>;

    /// budget: maximum total cost before eviction kicks in.
    explicit LruMap(std::size_t budget) : budget_(budget) {}

    /// Called with each (key, value) evicted so the owner can write back
    /// dirty state. The handler must not touch this map.
    void set_eviction_handler(EvictionHandler handler) { on_evict_ = std::move(handler); }

    /// Insert or overwrite; cost is the entry's contribution to the budget.
    /// Inserting may evict other (least recently used) entries. The entry
    /// being inserted is never evicted by its own insertion, even if its
    /// cost alone exceeds the budget. Overwriting counts as eviction of the
    /// old value — the handler runs so owners can write back dirty state
    /// they would otherwise silently lose.
    void put(const K& key, V value, std::size_t cost) {
        auto it = index_.find(key);
        if (it != index_.end()) {
            if (on_evict_) on_evict_(it->second->key, it->second->value);
            total_cost_ -= it->second->cost;
            order_.erase(it->second);
            index_.erase(it);
        }
        order_.push_front(Entry{key, std::move(value), cost});
        index_[key] = order_.begin();
        total_cost_ += cost;
        evict_over_budget();
    }

    /// Lookup that refreshes recency. The returned pointer is invalidated by
    /// any subsequent mutation of the map.
    V* get(const K& key) {
        auto it = index_.find(key);
        if (it == index_.end()) return nullptr;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->value;
    }

    /// Lookup without refreshing recency.
    const V* peek(const K& key) const {
        auto it = index_.find(key);
        return it == index_.end() ? nullptr : &it->second->value;
    }

    /// Remove an entry without invoking the eviction handler.
    std::optional<V> take(const K& key) {
        auto it = index_.find(key);
        if (it == index_.end()) return std::nullopt;
        V out = std::move(it->second->value);
        total_cost_ -= it->second->cost;
        order_.erase(it->second);
        index_.erase(it);
        return out;
    }

    /// Evict everything (invoking the handler), e.g. on flush/close.
    void clear() {
        while (!order_.empty()) evict_one();
    }

    [[nodiscard]] std::size_t size() const { return index_.size(); }
    [[nodiscard]] std::size_t total_cost() const { return total_cost_; }
    [[nodiscard]] std::size_t budget() const { return budget_; }

    void set_budget(std::size_t budget) {
        budget_ = budget;
        evict_over_budget();
    }

private:
    struct Entry {
        K key;
        V value;
        std::size_t cost;
    };

    void evict_one() {
        EBV_ASSERT(!order_.empty());
        Entry& victim = order_.back();
        if (on_evict_) on_evict_(victim.key, victim.value);
        total_cost_ -= victim.cost;
        index_.erase(victim.key);
        order_.pop_back();
    }

    void evict_over_budget() {
        // Keep at least the most recent entry resident so a single
        // over-budget item still works.
        while (total_cost_ > budget_ && order_.size() > 1) evict_one();
    }

    std::size_t budget_;
    std::size_t total_cost_ = 0;
    std::list<Entry> order_;
    std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
    EvictionHandler on_evict_;
};

}  // namespace ebv::util
