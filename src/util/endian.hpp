// Endian-explicit integer load/store helpers. The wire format of the chain
// (like Bitcoin's) is little-endian; hash displays are big-endian.
#pragma once

#include <cstdint>
#include <cstring>

namespace ebv::util {

inline std::uint16_t load_le16(const std::uint8_t* p) {
    return static_cast<std::uint16_t>(p[0]) | static_cast<std::uint16_t>(p[1]) << 8;
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
    return static_cast<std::uint64_t>(load_le32(p)) |
           static_cast<std::uint64_t>(load_le32(p + 4)) << 32;
}

inline void store_le16(std::uint8_t* p, std::uint16_t v) {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) {
    store_le32(p, static_cast<std::uint32_t>(v));
    store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
           static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

inline std::uint64_t load_be64(const std::uint8_t* p) {
    return static_cast<std::uint64_t>(load_be32(p)) << 32 |
           static_cast<std::uint64_t>(load_be32(p + 4));
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
    store_be32(p, static_cast<std::uint32_t>(v >> 32));
    store_be32(p + 4, static_cast<std::uint32_t>(v));
}

}  // namespace ebv::util
