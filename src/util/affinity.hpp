// CPU-affinity portability shim for util::ThreadPool's optional worker
// pinning (EBV_AFFINITY). Pinning keeps each slot's working set — its
// contiguous input span, sighash templates, deque cache lines — on one
// core's private caches, and is the first rung toward the NUMA-aware
// partitioning the ROADMAP names. Everything degrades gracefully: on
// non-Linux platforms (or when the syscall is refused, e.g. by a sandbox)
// pin_current_thread() returns false and the pool simply runs unpinned.
#pragma once

#include <thread>

namespace ebv::util {

/// True when this build can pin threads at all (Linux with pthreads).
bool affinity_supported() noexcept;

/// CPUs usable by this process (affinity-mask aware on Linux); >= 1.
unsigned affinity_cpu_count() noexcept;

/// Pin the calling thread to `cpu % affinity_cpu_count()`. Returns false
/// when unsupported or when the kernel refuses.
bool pin_current_thread(unsigned cpu) noexcept;

/// Pin another thread by its std::thread::native_handle(). Lets a pool pin
/// its workers synchronously at construction instead of racing their
/// startup.
bool pin_thread(std::thread::native_handle_type handle, unsigned cpu) noexcept;

}  // namespace ebv::util
