// Small pure helpers behind environment-driven configuration, split out of
// the bench harness so they can be unit-tested without touching the real
// environment.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ebv::util {

/// Thread counts for a parallel-validation sweep: the fixed {1, 2, 4} base,
/// plus `hardware` (hardware_concurrency; ignored when 0), plus `extra`
/// (the EBV_THREADS override; ignored when 0) — ascending and deduplicated,
/// so a sweep's JSON report never carries two rows for one thread count
/// even when the overrides collide with a base entry.
inline std::vector<std::size_t> thread_sweep_counts(std::size_t hardware,
                                                    std::uint64_t extra) {
    std::vector<std::size_t> counts{1, 2, 4};
    if (hardware > 0) counts.push_back(hardware);
    if (extra > 0) counts.push_back(static_cast<std::size_t>(extra));
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    return counts;
}

}  // namespace ebv::util
