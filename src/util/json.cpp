#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace ebv::util::json {

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Value> parse_document() {
        auto value = parse_value();
        if (!value) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
        return value;
    }

private:
    static constexpr std::size_t kMaxDepth = 128;

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    std::optional<Value> parse_value() {
        if (++depth_ > kMaxDepth) return std::nullopt;
        skip_ws();
        std::optional<Value> out;
        if (pos_ >= text_.size()) {
            out = std::nullopt;
        } else if (const char c = text_[pos_]; c == '{') {
            out = parse_object();
        } else if (c == '[') {
            out = parse_array();
        } else if (c == '"') {
            auto s = parse_string();
            out = s ? std::optional<Value>(Value::string(std::move(*s))) : std::nullopt;
        } else if (literal("true")) {
            out = Value::boolean(true);
        } else if (literal("false")) {
            out = Value::boolean(false);
        } else if (literal("null")) {
            out = Value::null();
        } else {
            out = parse_number();
        }
        --depth_;
        return out;
    }

    std::optional<Value> parse_object() {
        ++pos_;  // '{'
        std::vector<std::pair<std::string, Value>> members;
        skip_ws();
        if (consume('}')) return Value::object(std::move(members));
        for (;;) {
            skip_ws();
            auto key = parse_string();
            if (!key || !consume(':')) return std::nullopt;
            auto value = parse_value();
            if (!value) return std::nullopt;
            // First occurrence wins on duplicate keys.
            bool duplicate = false;
            for (const auto& [k, v] : members) {
                if (k == *key) duplicate = true;
            }
            if (!duplicate) members.emplace_back(std::move(*key), std::move(*value));
            if (consume(',')) continue;
            if (consume('}')) return Value::object(std::move(members));
            return std::nullopt;
        }
    }

    std::optional<Value> parse_array() {
        ++pos_;  // '['
        std::vector<Value> items;
        skip_ws();
        if (consume(']')) return Value::array(std::move(items));
        for (;;) {
            auto value = parse_value();
            if (!value) return std::nullopt;
            items.push_back(std::move(*value));
            if (consume(',')) continue;
            if (consume(']')) return Value::array(std::move(items));
            return std::nullopt;
        }
    }

    std::optional<std::string> parse_string() {
        if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
        ++pos_;
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c == '\\') {
                if (pos_ >= text_.size()) return std::nullopt;
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos_ + 4 > text_.size()) return std::nullopt;
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = text_[pos_++];
                            code <<= 4;
                            if (h >= '0' && h <= '9')
                                code += static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f')
                                code += static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F')
                                code += static_cast<unsigned>(h - 'A' + 10);
                            else
                                return std::nullopt;
                        }
                        // Latin-1 subset only; anything wider is replaced.
                        out += code <= 0xff ? static_cast<char>(code) : '?';
                        break;
                    }
                    default: return std::nullopt;
                }
                continue;
            }
            out += c;
        }
        return std::nullopt;  // unterminated
    }

    std::optional<Value> parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) return std::nullopt;
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') return std::nullopt;
        return Value::number(value);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
    return Parser(text).parse_document();
}

}  // namespace ebv::util::json
