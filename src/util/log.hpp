// Minimal leveled logger for the library. Quiet by default (warnings and
// up); benches and examples can raise verbosity. The startup level comes
// from the environment, parsed once before main: EBV_LOG_LEVEL=debug|info|
// warn|error (or 0-3), or EBV_VERBOSE=1 as a shorthand for debug.
#pragma once

#include <cstdarg>

namespace ebv::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style; a newline is appended.
void log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace ebv::util

#define EBV_LOG_DEBUG(...) ::ebv::util::log(::ebv::util::LogLevel::kDebug, __VA_ARGS__)
#define EBV_LOG_INFO(...) ::ebv::util::log(::ebv::util::LogLevel::kInfo, __VA_ARGS__)
#define EBV_LOG_WARN(...) ::ebv::util::log(::ebv::util::LogLevel::kWarn, __VA_ARGS__)
#define EBV_LOG_ERROR(...) ::ebv::util::log(::ebv::util::LogLevel::kError, __VA_ARGS__)
