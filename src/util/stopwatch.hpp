// Timing primitives. Wall-clock measurement (Stopwatch) is kept separate
// from modelled time (SimTimeLedger): the storage layer's disk latency is
// *accounted*, not slept, so experiments run fast yet report the latency a
// real HDD/SSD would have added. TimeBreakdown values always carry both.
#pragma once

#include <chrono>
#include <cstdint>

namespace ebv::util {

using Nanoseconds = std::int64_t;

class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    void restart() { start_ = Clock::now(); }

    [[nodiscard]] Nanoseconds elapsed_ns() const {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Accumulates modelled (simulated) time, e.g. HDD seeks that are charged
/// but not actually slept. Single-writer per validation pass; benches read
/// deltas between operations.
class SimTimeLedger {
public:
    void charge(Nanoseconds ns) { total_ns_ += ns; }
    [[nodiscard]] Nanoseconds total_ns() const { return total_ns_; }
    void reset() { total_ns_ = 0; }

private:
    Nanoseconds total_ns_ = 0;
};

/// A measured interval: real CPU time plus modelled device time.
struct TimeCost {
    Nanoseconds wall_ns = 0;
    Nanoseconds simulated_ns = 0;

    [[nodiscard]] Nanoseconds total_ns() const { return wall_ns + simulated_ns; }

    TimeCost& operator+=(const TimeCost& o) {
        wall_ns += o.wall_ns;
        simulated_ns += o.simulated_ns;
        return *this;
    }
};

inline TimeCost operator+(TimeCost a, const TimeCost& b) { return a += b; }

inline double to_ms(Nanoseconds ns) { return static_cast<double>(ns) / 1e6; }
inline double to_sec(Nanoseconds ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace ebv::util
