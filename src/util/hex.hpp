// Hex encoding/decoding for byte ranges.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/span.hpp"

namespace ebv::util {

/// Lowercase hex encoding of a byte range.
std::string hex_encode(ByteSpan data);

/// Decode a hex string (upper or lower case). Returns nullopt on any
/// malformed input (odd length, non-hex character).
std::optional<Bytes> hex_decode(std::string_view hex);

}  // namespace ebv::util
