#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ebv::util {

namespace {

/// Startup verbosity: EBV_LOG_LEVEL=debug|info|warn|error (or 0-3) wins;
/// any non-zero EBV_VERBOSE means debug; default stays warnings-and-up.
/// Parsed exactly once, before main; set_log_level() still overrides.
LogLevel level_from_env() {
    if (const char* v = std::getenv("EBV_LOG_LEVEL")) {
        if (!std::strcmp(v, "debug") || !std::strcmp(v, "0")) return LogLevel::kDebug;
        if (!std::strcmp(v, "info") || !std::strcmp(v, "1")) return LogLevel::kInfo;
        if (!std::strcmp(v, "warn") || !std::strcmp(v, "2")) return LogLevel::kWarn;
        if (!std::strcmp(v, "error") || !std::strcmp(v, "3")) return LogLevel::kError;
        std::fprintf(stderr, "[ebv WARN] unknown EBV_LOG_LEVEL '%s' ignored\n", v);
    }
    if (const char* v = std::getenv("EBV_VERBOSE")) {
        if (v[0] != '\0' && std::strcmp(v, "0") != 0) return LogLevel::kDebug;
    }
    return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{level_from_env()};

const char* level_name(LogLevel l) {
    switch (l) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* fmt, ...) {
    if (level < g_level.load()) return;
    std::fprintf(stderr, "[ebv %s] ", level_name(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

}  // namespace ebv::util
