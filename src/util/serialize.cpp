#include "util/serialize.hpp"

namespace ebv::util {

void Writer::u16(std::uint16_t v) {
    std::uint8_t tmp[2];
    store_le16(tmp, v);
    bytes({tmp, 2});
}

void Writer::u32(std::uint32_t v) {
    std::uint8_t tmp[4];
    store_le32(tmp, v);
    bytes({tmp, 4});
}

void Writer::u64(std::uint64_t v) {
    std::uint8_t tmp[8];
    store_le64(tmp, v);
    bytes({tmp, 8});
}

void Writer::compact_size(std::uint64_t v) {
    if (v < 0xfd) {
        u8(static_cast<std::uint8_t>(v));
    } else if (v <= 0xffff) {
        u8(0xfd);
        u16(static_cast<std::uint16_t>(v));
    } else if (v <= 0xffffffff) {
        u8(0xfe);
        u32(static_cast<std::uint32_t>(v));
    } else {
        u8(0xff);
        u64(v);
    }
}

void Writer::var_bytes(ByteSpan data) {
    compact_size(data.size());
    bytes(data);
}

std::string to_string(DecodeError e) {
    switch (e) {
        case DecodeError::kTruncated: return "truncated input";
        case DecodeError::kOversizedField: return "oversized field";
        case DecodeError::kNonCanonical: return "non-canonical compact size";
        case DecodeError::kMalformed: return "malformed structure";
    }
    return "unknown decode error";
}

Result<std::uint8_t, DecodeError> Reader::u8() {
    if (!can_read(1)) return Unexpected{DecodeError::kTruncated};
    return data_[pos_++];
}

Result<std::uint16_t, DecodeError> Reader::u16() {
    if (!can_read(2)) return Unexpected{DecodeError::kTruncated};
    const auto v = load_le16(cursor());
    pos_ += 2;
    return v;
}

Result<std::uint32_t, DecodeError> Reader::u32() {
    if (!can_read(4)) return Unexpected{DecodeError::kTruncated};
    const auto v = load_le32(cursor());
    pos_ += 4;
    return v;
}

Result<std::uint64_t, DecodeError> Reader::u64() {
    if (!can_read(8)) return Unexpected{DecodeError::kTruncated};
    const auto v = load_le64(cursor());
    pos_ += 8;
    return v;
}

Result<std::int64_t, DecodeError> Reader::i64() {
    auto v = u64();
    if (!v) return Unexpected{v.error()};
    return static_cast<std::int64_t>(*v);
}

Result<std::uint64_t, DecodeError> Reader::compact_size() {
    auto first = u8();
    if (!first) return Unexpected{first.error()};
    if (*first < 0xfd) return static_cast<std::uint64_t>(*first);
    if (*first == 0xfd) {
        auto v = u16();
        if (!v) return Unexpected{v.error()};
        if (*v < 0xfd) return Unexpected{DecodeError::kNonCanonical};
        return static_cast<std::uint64_t>(*v);
    }
    if (*first == 0xfe) {
        auto v = u32();
        if (!v) return Unexpected{v.error()};
        if (*v <= 0xffff) return Unexpected{DecodeError::kNonCanonical};
        return static_cast<std::uint64_t>(*v);
    }
    auto v = u64();
    if (!v) return Unexpected{v.error()};
    if (*v <= 0xffffffff) return Unexpected{DecodeError::kNonCanonical};
    return *v;
}

Result<Bytes, DecodeError> Reader::bytes(std::size_t n) {
    if (!can_read(n)) return Unexpected{DecodeError::kTruncated};
    Bytes out(cursor(), cursor() + n);
    pos_ += n;
    return out;
}

Result<Bytes, DecodeError> Reader::var_bytes(std::size_t limit) {
    auto n = compact_size();
    if (!n) return Unexpected{n.error()};
    if (*n > limit) return Unexpected{DecodeError::kOversizedField};
    return bytes(static_cast<std::size_t>(*n));
}

}  // namespace ebv::util
