// A minimal expected-style result type. gcc 12's libstdc++ does not ship
// <expected>, and exceptions are the wrong tool on the validation hot path
// (an invalid block is an ordinary outcome, not an exceptional one).
#pragma once

#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace ebv::util {

/// Wrapper marking a value as an error so Result<T,E> stays unambiguous
/// even when T and E are the same type.
template <typename E>
struct Unexpected {
    E error;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

/// Either a value of type T or an error of type E.
template <typename T, typename E>
class [[nodiscard]] Result {
public:
    Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
    Result(Unexpected<E> err) : storage_(std::in_place_index<1>, std::move(err.error)) {}

    [[nodiscard]] bool has_value() const { return storage_.index() == 0; }
    explicit operator bool() const { return has_value(); }

    T& value() & {
        EBV_EXPECTS(has_value());
        return std::get<0>(storage_);
    }
    const T& value() const& {
        EBV_EXPECTS(has_value());
        return std::get<0>(storage_);
    }
    T&& value() && {
        EBV_EXPECTS(has_value());
        return std::get<0>(std::move(storage_));
    }

    E& error() & {
        EBV_EXPECTS(!has_value());
        return std::get<1>(storage_);
    }
    const E& error() const& {
        EBV_EXPECTS(!has_value());
        return std::get<1>(storage_);
    }

    T& operator*() & { return value(); }
    const T& operator*() const& { return value(); }
    T* operator->() { return &value(); }
    const T* operator->() const { return &value(); }

private:
    std::variant<T, E> storage_;
};

/// Result specialization for operations that produce no value.
struct Ok {};

template <typename E>
using Status = Result<Ok, E>;

}  // namespace ebv::util
