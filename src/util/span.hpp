// Byte-range aliases and conversions used throughout the library.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace ebv::util {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

/// View the bytes of a string (no copy).
inline ByteSpan as_bytes(std::string_view s) {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copy a byte range into an owned buffer.
inline Bytes to_bytes(ByteSpan s) { return Bytes(s.begin(), s.end()); }

/// Copy a string's bytes into an owned buffer.
inline Bytes to_bytes(std::string_view s) { return to_bytes(as_bytes(s)); }

}  // namespace ebv::util
