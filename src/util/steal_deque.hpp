// Bounded lock-free Chase–Lev work-stealing deque of index ranges, the
// per-slot queue behind util::ThreadPool's stealing scheduler.
//
// One owner thread pushes and pops ranges at the *bottom* (LIFO — the most
// recently split half is cache-adjacent to what the owner just ran); any
// number of thief threads steal from the *top* (FIFO — thieves take the
// oldest, largest halves, farthest from the owner's working set). The
// memory orderings follow the C11 formulation of Lê, Pop, Cohen &
// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP'13).
//
// The deque is bounded rather than growable: the pool seeds each slot with
// one contiguous span and owners push at most one half per split level, so
// occupancy is O(log n) plus a small constant for stolen ranges being
// re-split. kCapacity = 256 leaves two orders of magnitude of headroom; on
// overflow push() returns false and the caller simply runs the range
// inline, which is always correct.
//
// Ranges are packed as two 32-bit halves into one 64-bit atomic cell so a
// racing steal reads a torn-free (begin, end) pair with a single load. The
// pool routes jobs with n >= 2^32 to the shared-counter scheduler instead.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace ebv::util {

/// One contiguous index range [begin, end).
struct IndexRange {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;

    [[nodiscard]] std::uint32_t size() const noexcept { return end - begin; }
};

class StealDeque {
public:
    static constexpr std::size_t kCapacity = 256;  // power of two

    /// Owner only. False when the deque is full (caller runs `r` inline).
    bool push(IndexRange r) noexcept {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
        buffer_[static_cast<std::size_t>(b) & kMask].store(pack(r),
                                                           std::memory_order_relaxed);
        // Publish the cell before the new bottom becomes visible to thieves.
        std::atomic_thread_fence(std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return true;
    }

    /// Owner only. Takes the most recently pushed range (LIFO). The size-1
    /// case races a concurrent steal(); the CAS on top_ arbitrates so the
    /// last element is handed out exactly once.
    bool pop(IndexRange& out) noexcept {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_relaxed);
        if (t > b) {  // already empty
            bottom_.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = unpack(buffer_[static_cast<std::size_t>(b) & kMask].load(
            std::memory_order_relaxed));
        if (t == b) {
            // Last element: win it from any in-flight thief or concede.
            const bool won = top_.compare_exchange_strong(
                t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
            bottom_.store(b + 1, std::memory_order_relaxed);
            return won;
        }
        return true;
    }

    /// Any thread. Takes the oldest range (FIFO). False when empty or when
    /// the CAS race against the owner/another thief is lost.
    bool steal(IndexRange& out) noexcept {
        std::int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b) return false;
        // Read before the CAS: a successful CAS proves the cell was not
        // recycled (push() refuses to wrap onto an unconsumed top).
        const std::uint64_t cell =
            buffer_[static_cast<std::size_t>(t) & kMask].load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return false;
        out = unpack(cell);
        return true;
    }

    /// Approximate occupancy; exact when the deque is quiescent.
    [[nodiscard]] std::size_t size() const noexcept {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

private:
    static constexpr std::size_t kMask = kCapacity - 1;
    static_assert((kCapacity & kMask) == 0, "capacity must be a power of two");

    static std::uint64_t pack(IndexRange r) noexcept {
        return (static_cast<std::uint64_t>(r.begin) << 32) | r.end;
    }
    static IndexRange unpack(std::uint64_t v) noexcept {
        return IndexRange{static_cast<std::uint32_t>(v >> 32),
                          static_cast<std::uint32_t>(v)};
    }

    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
    alignas(64) std::array<std::atomic<std::uint64_t>, kCapacity> buffer_{};
};

}  // namespace ebv::util
