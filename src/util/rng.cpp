#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ebv::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
    EBV_EXPECTS(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
    EBV_EXPECTS(lo <= hi);
    if (lo == 0 && hi == ~0ULL) return next();
    return lo + below(hi - lo + 1);
}

double Rng::uniform01() {
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
}

std::uint64_t Rng::geometric_at_least_one(double mean) {
    if (mean <= 1.0) return 1;
    // Geometric on {1,2,...} with success probability 1/mean.
    const double p = 1.0 / mean;
    const double u = uniform01();
    const double v = std::log1p(-u) / std::log1p(-p);
    const auto n = static_cast<std::uint64_t>(std::floor(v)) + 1;
    return n == 0 ? 1 : n;
}

double Rng::exponential(double mean) {
    EBV_EXPECTS(mean > 0.0);
    return -mean * std::log1p(-uniform01());
}

void Rng::fill(MutableByteSpan out) {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
        const std::uint64_t v = next();
        for (int b = 0; b < 8; ++b) out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
        i += 8;
    }
    if (i < out.size()) {
        const std::uint64_t v = next();
        for (int b = 0; i < out.size(); ++i, ++b) out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
}

}  // namespace ebv::util
