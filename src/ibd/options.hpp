// Option and result types for the inter-block IBD pipeline (`ebv::ibd`).
// Header-only so core::EbvNodeOptions can embed PipelineOptions without a
// link-time dependency on ebv_ibd; the pipeline itself — and the definition
// of core::EbvNode::submit_blocks — lives in src/ibd/ (link ebv_ibd).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "core/ebv_validator.hpp"

namespace ebv::ibd {

struct PipelineOptions {
    /// Off by default: submit_blocks falls back to the serial
    /// block-at-a-time loop. The EBV_PIPELINE environment knob (1/0)
    /// overrides this in from_env().
    bool enabled = false;

    /// Lookahead window W: how many blocks may have proof checks in flight
    /// at once. EBV_PIPELINE_WINDOW overrides. W = 1 degenerates to an
    /// almost-serial schedule — spent-bit application still rides the next
    /// window's parallel pass.
    std::size_t window = 16;

    /// Resolve EBV_PIPELINE / EBV_PIPELINE_WINDOW on top of `base`.
    /// (Defined in src/ibd/pipeline.cpp.)
    static PipelineOptions from_env(PipelineOptions base);
};

/// Where and why a batch stopped. `failure` is bit-for-bit the tuple a
/// serial EbvValidator::connect_block loop reports for the same chain —
/// the pipeline's determinism contract (docs/PIPELINE.md).
struct PipelineFailure {
    std::size_t block_index = 0;  ///< index into the submitted batch
    std::uint32_t height = 0;     ///< absolute chain height of that block
    core::EbvValidationFailure failure;
};

struct BatchResult {
    std::size_t connected = 0;  ///< blocks validated and committed
    std::optional<PipelineFailure> failure;
    bool aborted = false;    ///< stopped by Pipeline::cancel(), state consistent
    bool pipelined = false;  ///< false = the serial fallback path ran
    core::EbvTimings timings;  ///< aggregate per-stage breakdown
    std::uint64_t wall_ns = 0;  ///< end-to-end wall time of the batch

    [[nodiscard]] bool ok() const { return !failure.has_value() && !aborted; }
};

}  // namespace ebv::ibd
