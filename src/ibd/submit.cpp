// core::EbvNode::submit_blocks lives here, not in core/node.cpp, so that
// ebv_core carries no link-time dependency on the pipeline: the batch entry
// point is declared in core/node.hpp (with header-only ibd/options.hpp) and
// defined in ebv_ibd, which links ebv_core. Only batch callers pay for it.
#include "core/node.hpp"
#include "ibd/pipeline.hpp"
#include "util/assert.hpp"
#include "util/stopwatch.hpp"

namespace ebv::core {

ibd::BatchResult EbvNode::submit_blocks(std::span<const EbvBlock> blocks) {
    const ibd::PipelineOptions options = ibd::PipelineOptions::from_env(options_.pipeline);

    if (!options.enabled) {
        // Serial fallback: the reference block-at-a-time loop.
        ibd::BatchResult result;
        util::Stopwatch watch;
        for (std::size_t i = 0; i < blocks.size(); ++i) {
            auto r = submit_block(blocks[i]);
            if (!r) {
                result.failure =
                    ibd::PipelineFailure{i, next_height(), r.error()};
                break;
            }
            result.timings += *r;
            ++result.connected;
        }
        result.wall_ns = static_cast<std::uint64_t>(watch.elapsed_ns());
        return result;
    }

    ibd::Pipeline pipeline(options_.params, headers_, status_, options,
                           options_.validator.script_pool,
                           options_.validator.verify_scripts,
                           batch_verify_enabled(options_.validator),
                           sighash_template_enabled(options_.validator),
                           options_.validator.sigcache);
    return pipeline.run(blocks, [&](const EbvBlock& block, std::uint32_t height) {
        (void)height;
        output_counts_.push_back(static_cast<std::uint32_t>(block.output_count()));
        if (block_store_) block_store_->append(block);
    });
}

}  // namespace ebv::core
