// ebv::ibd — pipelined inter-block validation for initial block download.
//
// The serial IBD loop (EbvNode::submit_block per block) leaves the thread
// pool idle between blocks: block N+1 cannot start until block N's
// spent-bit update finishes, even though proof checking (EV+SV) touches no
// shared state. This subsystem overlaps work *across* blocks with a
// bounded-lookahead window W:
//
//   stage 1  structural pass       serial, in block order
//            (coinbase shape, stake positions, Merkle root, value ranges)
//   stage 2  fused EV+SV proofs    out of order, all W blocks at once, on
//                                  util::ThreadPool — plus the *previous*
//                                  window's sharded spent-bit application,
//                                  which rides the same parallel region
//   stage 3  resolve + commit      serial, in block order: UV against the
//                                  pending-state overlay, value/fee rules,
//                                  verdict resolution, header/vector install
//
// Inter-block dependencies are tracked explicitly: an input in block N+k
// that spends an output created inside the window resolves its header from
// the window's pending headers (EV), and one spending an output *spent*
// earlier in the window is caught by the pending-spend overlay (UV) —
// validation runs against the state a serial loop would have committed.
//
// Failure semantics are deterministic: the first failing block (in height
// order) reports exactly the EbvValidationFailure tuple the serial loop
// reports, blocks before it commit, blocks after it never touch state.
// Pipeline::cancel() aborts an in-flight run between chunks (CancelToken):
// the current window is unwound (never committed) and every
// already-committed block is left fully applied, so a cancelled run can be
// resumed with a fresh run() on the same state.
#pragma once

#include <span>

#include "chain/header_index.hpp"
#include "chain/params.hpp"
#include "core/bitvector_set.hpp"
#include "core/ebv_transaction.hpp"
#include "ibd/options.hpp"
#include "util/thread_pool.hpp"

namespace ebv::core {
class SigCache;
}  // namespace ebv::core

namespace ebv::ibd {

class Pipeline {
public:
    /// Per-block commit notification for caller bookkeeping (block stores,
    /// output-count tables). Invoked in height order after the block is
    /// fully validated and its header + status vector are installed; its
    /// spent bits may still be pending, but are guaranteed applied — or the
    /// block reported in BatchResult as never committed — by return.
    using CommitHook = util::FunctionRef<void(const core::EbvBlock&, std::uint32_t)>;

    /// `batch_verify` routes SV through the deferred batched-signature
    /// path (core::SvBatcher + crypto::verify_batch, docs/CRYPTO.md);
    /// failure parity with the inline path is preserved by its fallback.
    /// `sighash_template` shares one O(n) sighash template per transaction
    /// across its inputs' SV jobs (core::TxSighashCache, docs/CRYPTO.md).
    /// `sigcache` short-circuits signatures verified at mempool admission
    /// (core::SigCache, docs/MEMPOOL.md); nullptr = no reuse.
    Pipeline(const chain::ChainParams& params, chain::HeaderIndex& headers,
             core::BitVectorSet& status, PipelineOptions options,
             util::ThreadPool* pool, bool verify_scripts = true,
             bool batch_verify = false, bool sighash_template = true,
             core::SigCache* sigcache = nullptr)
        : params_(params),
          headers_(headers),
          status_(status),
          options_(options),
          pool_(pool),
          verify_scripts_(verify_scripts),
          batch_verify_(batch_verify),
          sighash_template_(sighash_template),
          sigcache_(sigcache) {}

    /// Validate and connect `blocks` on top of the current tip. Publishes
    /// `ebv.ibd.*` metrics (docs/OBSERVABILITY.md). Not re-entrant.
    BatchResult run(std::span<const core::EbvBlock> blocks, CommitHook on_commit);
    BatchResult run(std::span<const core::EbvBlock> blocks);

    /// Cooperatively abort an in-flight run() (callable from any thread or
    /// from the commit hook). Already-committed blocks stay fully applied;
    /// the in-flight window is discarded.
    void cancel() { cancel_.cancel(); }
    [[nodiscard]] bool cancel_requested() const { return cancel_.cancelled(); }
    /// Re-arm a pipeline whose previous run() was cancelled.
    void reset_cancel() { cancel_.reset(); }

private:
    const chain::ChainParams& params_;
    chain::HeaderIndex& headers_;
    core::BitVectorSet& status_;
    PipelineOptions options_;
    util::ThreadPool* pool_;
    bool verify_scripts_;
    bool batch_verify_;
    bool sighash_template_;
    core::SigCache* sigcache_;
    util::CancelToken cancel_;
};

}  // namespace ebv::ibd
