#include "ibd/pipeline.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "chain/amount.hpp"
#include "core/sig_cache.hpp"
#include "core/sighash_cache.hpp"
#include "core/sv_batcher.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/stopwatch.hpp"

namespace ebv::ibd {

namespace {

using core::BitVectorSet;
using core::EbvBlock;
using core::EbvError;
using core::EbvInput;
using core::EbvTransaction;
using core::EbvValidationFailure;
using core::EvStatus;

constexpr std::size_t kNoFail = std::numeric_limits<std::size_t>::max();

/// Registry handles, resolved once (values survive Registry::reset()).
struct IbdMetrics {
    obs::Counter& windows;
    obs::Counter& connects;
    obs::Counter& rejects;
    obs::Counter& txs;
    obs::Counter& inputs;
    obs::Counter& outputs;
    obs::Counter& proof_bytes;
    obs::Counter& pool_tasks;
    obs::Counter& pool_local_pops;
    obs::Counter& pool_steals;
    obs::Counter& pool_steal_attempts;
    obs::Histogram& window_occupancy;
    obs::Histogram& stall_ns;
    obs::Histogram& commit_ns;
    obs::Histogram& pool_steal_ns;
    obs::Histogram& pool_barrier_wait_ns;
    obs::Histogram& pool_wakeup_ns;
    obs::Gauge& blocks_inflight;

    static IbdMetrics& get() {
        static IbdMetrics m{
            obs::Registry::global().counter("ebv.ibd.windows"),
            obs::Registry::global().counter("ebv.block.connects"),
            obs::Registry::global().counter("ebv.block.rejects"),
            obs::Registry::global().counter("ebv.block.txs"),
            obs::Registry::global().counter("ebv.block.inputs"),
            obs::Registry::global().counter("ebv.block.outputs"),
            obs::Registry::global().counter("ebv.block.proof_bytes"),
            obs::Registry::global().counter("ebv.pool.tasks"),
            obs::Registry::global().counter("ebv.pool.local_pops"),
            obs::Registry::global().counter("ebv.pool.steals"),
            obs::Registry::global().counter("ebv.pool.steal_attempts"),
            obs::Registry::global().histogram(
                "ebv.ibd.window_occupancy",
                obs::Histogram::exponential_bounds(1, 2.0, 10)),
            obs::Registry::global().histogram("ebv.ibd.stall_ns"),
            obs::Registry::global().histogram("ebv.ibd.commit_ns"),
            obs::Registry::global().histogram("ebv.pool.steal_ns"),
            obs::Registry::global().histogram("ebv.pool.barrier_wait_ns"),
            obs::Registry::global().histogram("ebv.pool.wakeup_ns"),
            obs::Registry::global().gauge("ebv.ibd.blocks_inflight"),
        };
        return m;
    }
};

std::uint64_t spent_key(std::uint32_t height, std::uint32_t position) {
    return static_cast<std::uint64_t>(height) << 32 | position;
}

void cas_min(std::atomic<std::size_t>& target, std::size_t value) {
    std::size_t cur = target.load(std::memory_order_relaxed);
    while (value < cur &&
           !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
}

/// One input's fused EV+SV job, schedulable out of block order.
struct ProofJob {
    std::uint32_t block;        ///< window-relative block index
    std::uint32_t ordinal;      ///< input ordinal within its block
    std::uint32_t tx_index;
    std::uint32_t input_index;
};

struct Verdict {
    EvStatus ev = EvStatus::kOk;
    script::ScriptError script = script::ScriptError::kOk;
};

/// CAS-min holder that can live in a vector sized at runtime.
struct AtomicMin {
    std::atomic<std::size_t> value{kNoFail};
};

/// Spends recorded by committed blocks, partitioned by status shard,
/// awaiting application inside the next parallel pass.
struct DeferredSpends {
    std::array<std::vector<BitVectorSet::SpentRecord>, BitVectorSet::kShardCount> by_shard;
    std::size_t total = 0;

    void add(std::uint32_t height, std::uint32_t position) {
        by_shard[BitVectorSet::shard_of(height)].push_back({height, position});
        ++total;
    }
    [[nodiscard]] bool empty() const { return total == 0; }
    void clear() {
        for (auto& v : by_shard) v.clear();
        total = 0;
    }
};

}  // namespace

PipelineOptions PipelineOptions::from_env(PipelineOptions base) {
    if (const char* v = std::getenv("EBV_PIPELINE"))
        base.enabled = std::strtoul(v, nullptr, 10) != 0;
    if (const char* v = std::getenv("EBV_PIPELINE_WINDOW")) {
        const unsigned long w = std::strtoul(v, nullptr, 10);
        if (w > 0) base.window = static_cast<std::size_t>(w);
    }
    return base;
}

BatchResult Pipeline::run(std::span<const core::EbvBlock> blocks) {
    return run(blocks, [](const core::EbvBlock&, std::uint32_t) {});
}

BatchResult Pipeline::run(std::span<const core::EbvBlock> blocks, CommitHook on_commit) {
    BatchResult result;
    result.pipelined = true;
    util::Stopwatch run_watch;
    IbdMetrics& m = IbdMetrics::get();

    // Causal root for the whole IBD run: every window span nests under it,
    // blocks under their window, worker-side EV/SV/shard spans under their
    // block (see docs/OBSERVABILITY.md).
    obs::ScopedSpan run_span("ebv.ibd.run", "ibd");
    run_span.set_value(static_cast<std::int64_t>(blocks.size()));

    const std::size_t W = options_.window == 0 ? 1 : options_.window;
    const std::size_t slots = pool_ != nullptr ? pool_->thread_count() : 1;

    // Spends of already-committed blocks, to be applied inside the next
    // window's parallel pass ("stage 3 joins the parallel region").
    DeferredSpends deferred;

    // Applies `deferred` on the calling thread, skipping shards a parallel
    // pass already handled. Used for the final flush and for completing a
    // cancelled pass — committed blocks must always end up fully applied.
    std::array<std::atomic<bool>, BitVectorSet::kShardCount> shard_done{};
    const auto flush_deferred_serial = [&] {
        util::Stopwatch watch;
        for (std::size_t s = 0; s < BitVectorSet::kShardCount; ++s) {
            if (deferred.by_shard[s].empty()) continue;
            if (shard_done[s].load(std::memory_order_relaxed)) continue;
            status_.spend_shard(s, deferred.by_shard[s].data(), deferred.by_shard[s].size());
        }
        deferred.clear();
        const auto ns = watch.elapsed_ns();
        result.timings.update.wall_ns += ns;
        m.commit_ns.observe(static_cast<std::uint64_t>(ns));
    };

    std::size_t batch_index = 0;
    while (batch_index < blocks.size()) {
        if (cancel_.cancelled()) {
            flush_deferred_serial();
            result.aborted = true;
            break;
        }

        const std::uint32_t window_base = static_cast<std::uint32_t>(headers_.size());
        const std::size_t window_len = std::min(W, blocks.size() - batch_index);
        const std::span<const EbvBlock> window = blocks.subspan(batch_index, window_len);

        obs::ScopedSpan window_span("ebv.ibd.window", "ibd");
        window_span.set_value(window_base);
        const std::uint64_t window_span_id = window_span.span_id();
        const std::uint64_t trace_id = obs::current_context().trace_id;
        const bool tracing = window_span_id != 0;
        const bool trace_detail = obs::Tracer::global().detail();

        // ---- Stage 1: structural pass, serial block order ------------------
        // Intra-block only, so running it for the whole window up front
        // cannot change any verdict a serial loop would reach. The window is
        // truncated at the first structural failure; its tuple is reported
        // only if every earlier block commits (a serial loop would have
        // stopped at an earlier resolution failure otherwise).
        util::Stopwatch stall_watch;
        std::size_t accepted = window_len;
        std::optional<EbvValidationFailure> structural_failure;
        for (std::size_t b = 0; b < window_len; ++b) {
            if (auto failure = core::check_block_structure(window[b], params_)) {
                structural_failure = *failure;
                accepted = b;
                break;
            }
        }

        // One fused EV+SV job per input across all `accepted` blocks.
        std::vector<ProofJob> jobs;
        std::vector<std::size_t> job_begin(accepted, 0);  // per block, into jobs[]
        for (std::size_t b = 0; b < accepted; ++b) {
            job_begin[b] = jobs.size();
            const EbvBlock& block = window[b];
            for (std::size_t t = 1; t < block.txs.size(); ++t) {
                for (std::size_t i = 0; i < block.txs[t].inputs.size(); ++i) {
                    jobs.push_back(ProofJob{
                        static_cast<std::uint32_t>(b),
                        static_cast<std::uint32_t>(jobs.size() - job_begin[b]),
                        static_cast<std::uint32_t>(t), static_cast<std::uint32_t>(i)});
                }
            }
        }
        std::vector<Verdict> verdicts(jobs.size());
        std::vector<AtomicMin> ev_min(accepted);
        std::vector<AtomicMin> sv_min(accepted);
        std::atomic<std::size_t> min_fail_block{kNoFail};

        // Block spans get their ids up front: worker-side detail spans
        // parent under them while the blocks are still mid-validation; the
        // spans themselves are recorded at stage-3 resolution, which is fine
        // — exporters don't require parents to be recorded first.
        std::vector<std::uint64_t> block_span_ids(tracing ? accepted : 0);
        if (tracing)
            for (auto& id : block_span_ids) id = obs::next_span_id();

        // Shard-apply jobs for the previous window's spends ride in front of
        // the proof jobs: indices [0, shard_jobs) apply spent bits while
        // [shard_jobs, shard_jobs + jobs.size()) check proofs.
        std::array<std::size_t, BitVectorSet::kShardCount> active_shards{};
        std::size_t shard_jobs = 0;
        for (std::size_t s = 0; s < BitVectorSet::kShardCount; ++s) {
            shard_done[s].store(deferred.by_shard[s].empty(), std::memory_order_relaxed);
            if (!deferred.by_shard[s].empty()) active_shards[shard_jobs++] = s;
        }

        std::vector<std::uint64_t> ev_busy(slots, 0);
        std::vector<std::uint64_t> sv_busy(slots, 0);
        std::vector<std::uint64_t> commit_busy(slots, 0);

        // Deferred batched signature checking (docs/CRYPTO.md): SV verdicts
        // may resolve late (at a batch drain) but land in the same verdict
        // slots + per-block CAS-mins the inline path uses, so stage-3
        // resolution is identical either way.
        const auto resolve_sv = [&](std::size_t tag, script::ScriptError err) {
            if (err == script::ScriptError::kOk) return;
            const ProofJob& job = jobs[tag];
            verdicts[tag].script = err;
            cas_min(sv_min[job.block].value, job.ordinal);
            cas_min(min_fail_block, job.block);
        };
        std::optional<core::SvBatcher> batcher;
        if (verify_scripts_ && batch_verify_) batcher.emplace(slots, resolve_sv, sigcache_);

        // Per-transaction sighash templates (core::TxSighashCache), lazily
        // built by whichever worker first reaches one of the transaction's
        // inputs and shared by the rest across the window's parallel pass.
        const bool use_template = verify_scripts_ && sighash_template_;
        std::vector<std::vector<std::unique_ptr<core::TxSighashCache>>> caches(
            use_template ? accepted : 0);
        std::vector<std::unique_ptr<std::once_flag[]>> cache_once(use_template ? accepted : 0);
        if (use_template) {
            for (std::size_t b = 0; b < accepted; ++b) {
                caches[b].resize(window[b].txs.size());
                cache_once[b] = std::make_unique<std::once_flag[]>(window[b].txs.size());
            }
        }

        // Worker-side detail spans (per input / per shard), recorded with an
        // explicit parent because the enclosing block's span is still open
        // on the submitting thread. Gated behind the tracer's detail flag.
        const auto record_detail = [&](const char* name, const char* category,
                                       std::uint64_t parent, util::Nanoseconds ns,
                                       std::int64_t value) {
            obs::Span span;
            span.name = name;
            span.category = category;
            span.trace_id = trace_id;
            span.span_id = obs::next_span_id();
            span.parent_id = parent;
            span.wall_ns = ns;
            span.start_ns = obs::Tracer::now_ns() - ns;
            span.value = value;
            obs::Tracer::global().record(std::move(span));
        };

        const auto pass_body = [&](std::size_t slot, std::size_t index) {
            if (index < shard_jobs) {
                // Stage 3 (previous window): sharded spent-bit application.
                util::Stopwatch watch;
                const std::size_t s = active_shards[index];
                status_.spend_shard(s, deferred.by_shard[s].data(),
                                    deferred.by_shard[s].size());
                shard_done[s].store(true, std::memory_order_relaxed);
                const auto shard_ns = watch.elapsed_ns();
                commit_busy[slot] += static_cast<std::uint64_t>(shard_ns);
                if (trace_detail)
                    record_detail("ebv.ibd.shard_apply", "commit", window_span_id,
                                  shard_ns, static_cast<std::int64_t>(s));
                return;
            }

            // Stage 2: fused EV+SV for one input, possibly out of block
            // order. Skip rules mirror the serial validator's: a job may be
            // skipped only when a *lower* (block, ordinal) failure is
            // already recorded, so every verdict the resolution pass reads
            // was fully evaluated regardless of thread count.
            const ProofJob& job = jobs[index - shard_jobs];
            if (job.block > min_fail_block.load(std::memory_order_relaxed)) return;
            std::atomic<std::size_t>& block_ev_min = ev_min[job.block].value;
            if (job.ordinal > block_ev_min.load(std::memory_order_relaxed)) return;

            const EbvTransaction& tx = window[job.block].txs[job.tx_index];
            const EbvInput& in = tx.inputs[job.input_index];
            const std::uint32_t spending_height =
                window_base + static_cast<std::uint32_t>(job.block);

            // Inter-block dependency: heights inside the window resolve to
            // pending (structurally-checked, not-yet-committed) headers.
            const chain::BlockHeader* header = nullptr;
            if (in.height < window_base) {
                header = headers_.at(in.height);
            } else if (in.height < spending_height) {
                header = &window[in.height - window_base].header;
            }

            util::Stopwatch watch;
            const EvStatus ev = core::ev_check_input(in, header, spending_height);
            const auto ev_ns = watch.elapsed_ns();
            ev_busy[slot] += static_cast<std::uint64_t>(ev_ns);
            if (trace_detail)
                record_detail("ebv.ev.input", "ev", block_span_ids[job.block], ev_ns,
                              job.ordinal);
            if (ev != EvStatus::kOk) {
                verdicts[index - shard_jobs].ev = ev;
                cas_min(block_ev_min, job.ordinal);
                cas_min(min_fail_block, job.block);
                return;
            }

            if (!verify_scripts_) return;
            std::atomic<std::size_t>& block_sv_min = sv_min[job.block].value;
            if (job.ordinal > block_sv_min.load(std::memory_order_relaxed)) return;
            watch.restart();
            const core::TxSighashCache* cache = nullptr;
            if (use_template && tx.inputs.size() >= core::kSighashCacheMinInputs) {
                std::call_once(cache_once[job.block][job.tx_index], [&] {
                    caches[job.block][job.tx_index] =
                        std::make_unique<core::TxSighashCache>(tx);
                });
                cache = caches[job.block][job.tx_index].get();
            }
            if (batcher) {
                batcher->check(slot, index - shard_jobs, tx, job.input_index, cache);
            } else {
                resolve_sv(index - shard_jobs,
                           core::sv_check_input(tx, job.input_index, cache, sigcache_));
            }
            const auto sv_ns = watch.elapsed_ns();
            sv_busy[slot] += static_cast<std::uint64_t>(sv_ns);
            if (trace_detail)
                record_detail("ebv.sv.input", "sv", block_span_ids[job.block], sv_ns,
                              job.ordinal);
        };

        // ---- Stage 2 + deferred stage 3: one parallel region ---------------
        m.windows.inc();
        m.window_occupancy.observe(static_cast<std::uint64_t>(accepted));
        m.blocks_inflight.set(static_cast<std::int64_t>(accepted));
        const std::size_t pass_total = shard_jobs + jobs.size();
        const std::int64_t stall_before_pass = stall_watch.elapsed_ns();

        util::PoolStats pool_before{};
        std::vector<std::uint64_t> slot_busy_before;
        if (pool_ != nullptr) {
            pool_before = pool_->stats();
            if (tracing) slot_busy_before = pool_->slot_busy_ns();
        }
        const util::Nanoseconds pass_start_ns = tracing ? obs::Tracer::now_ns() : 0;
        util::Stopwatch pass_watch;
        if (pass_total > 0) {
            if (pool_ != nullptr) {
                try {
                    pool_->parallel_for_slots(pass_total, pass_body, &cancel_);
                } catch (...) {
                    // A proof body threw (e.g. bad_alloc): committed blocks
                    // must still end up fully applied before unwinding.
                    flush_deferred_serial();
                    m.blocks_inflight.set(0);
                    throw;
                }
            } else {
                for (std::size_t i = 0; i < pass_total; ++i) {
                    if (cancel_.cancelled() && i >= shard_jobs) break;
                    pass_body(0, i);
                }
            }
        }
        if (batcher) {
            // Resolve the below-target remainders before stage 3 reads any
            // verdict; still SV work, so it stays inside the pass wall.
            util::Stopwatch flush_watch;
            batcher->flush_all();
            sv_busy[0] += static_cast<std::uint64_t>(flush_watch.elapsed_ns());
        }
        if (use_template) {
            static obs::Counter& bytes_saved =
                obs::Registry::global().counter("ebv.crypto.sighash_bytes_saved");
            std::uint64_t saved = 0;
            for (const auto& block_caches : caches)
                for (const auto& cache : block_caches)
                    if (cache) saved += cache->bytes_saved();
            if (saved > 0) bytes_saved.inc(saved);
        }
        const util::Nanoseconds pass_wall = pass_watch.elapsed_ns();
        if (pool_ != nullptr) {
            const util::PoolStats pool_after = pool_->stats();
            m.pool_tasks.inc(pool_after.tasks - pool_before.tasks);
            // `barrier_wait_ns` was exported as ebv.pool.steal_ns before the
            // stealing scheduler existed; the latter now reports real steal
            // time (docs/OBSERVABILITY.md).
            m.pool_barrier_wait_ns.observe(pool_after.barrier_wait_ns -
                                           pool_before.barrier_wait_ns);
            m.pool_steal_ns.observe(pool_after.steal_ns - pool_before.steal_ns);
            m.pool_local_pops.inc(pool_after.local_pops - pool_before.local_pops);
            m.pool_steals.inc(pool_after.steals - pool_before.steals);
            m.pool_steal_attempts.inc(pool_after.steal_attempts -
                                      pool_before.steal_attempts);
            m.pool_wakeup_ns.observe(pool_after.wakeup_ns - pool_before.wakeup_ns);
            {
                // Per-slot queue-depth gauge: peak deque occupancy over the
                // pass (stealing scheduler; zeros under counter mode).
                const std::vector<std::uint64_t> queue_peak =
                    pool_->slot_queue_depth_peak();
                for (std::size_t s = 0; s < queue_peak.size(); ++s) {
                    char name[48];
                    std::snprintf(name, sizeof name, "ebv.pool.queue_depth.slot%zu",
                                  s);
                    obs::Registry::global().gauge(name).set(
                        static_cast<std::int64_t>(queue_peak[s]));
                }
            }
            if (tracing) {
                // Dedicated counter tracks: queue latency this pass and each
                // slot's utilization (busy/wall, percent) over the pass.
                obs::Tracer& tracer = obs::Tracer::global();
                const std::uint64_t wakeups = pool_after.wakeups - pool_before.wakeups;
                if (wakeups > 0)
                    tracer.record_counter(
                        "ebv.pool.wakeup_us",
                        static_cast<std::int64_t>(
                            (pool_after.wakeup_ns - pool_before.wakeup_ns) / wakeups /
                            1000));
                const std::vector<std::uint64_t> slot_busy_after = pool_->slot_busy_ns();
                for (std::size_t s = 0;
                     s < slot_busy_after.size() && s < slot_busy_before.size() &&
                     pass_wall > 0;
                     ++s) {
                    const std::uint64_t busy = slot_busy_after[s] - slot_busy_before[s];
                    char track[48];
                    std::snprintf(track, sizeof track, "ebv.pool.util_pct.slot%zu", s);
                    tracer.record_counter(
                        track, static_cast<std::int64_t>(
                                   100.0 * static_cast<double>(busy) /
                                   static_cast<double>(pass_wall)));
                }
                // Peak per-slot deque depth over the pass (stealing
                // scheduler; all zeros under counter mode).
                const std::vector<std::uint64_t> queue_peak =
                    pool_->slot_queue_depth_peak();
                for (std::size_t s = 0; s < queue_peak.size(); ++s) {
                    char track[48];
                    std::snprintf(track, sizeof track, "ebv.pool.queue_depth.slot%zu",
                                  s);
                    tracer.record_counter(
                        track, static_cast<std::int64_t>(queue_peak[s]));
                }
            }
        }

        // Apportion the pass's wall time across EV / SV / commit in
        // proportion to per-slot busy time, so EbvTimings::total() stays
        // wall-clock while the overlap is still visible per stage.
        {
            std::uint64_t ev_total = 0;
            std::uint64_t sv_total = 0;
            std::uint64_t commit_total = 0;
            for (std::size_t s = 0; s < slots; ++s) {
                ev_total += ev_busy[s];
                sv_total += sv_busy[s];
                commit_total += commit_busy[s];
            }
            const std::uint64_t busy_total = ev_total + sv_total + commit_total;
            if (busy_total > 0) {
                const auto share = [&](std::uint64_t part) {
                    return static_cast<util::Nanoseconds>(
                        static_cast<double>(pass_wall) * static_cast<double>(part) /
                        static_cast<double>(busy_total));
                };
                const util::Nanoseconds ev_share = share(ev_total);
                const util::Nanoseconds sv_share = share(sv_total);
                result.timings.ev.wall_ns += ev_share;
                result.timings.sv.wall_ns += sv_share;
                result.timings.update.wall_ns += pass_wall - ev_share - sv_share;
            } else {
                result.timings.other.wall_ns += pass_wall;
            }
            if (commit_total > 0) m.commit_ns.observe(commit_total);
        }

        if (cancel_.cancelled()) {
            // The pass may have skipped both shard and proof chunks: finish
            // applying committed blocks' spends, discard the window.
            flush_deferred_serial();
            m.blocks_inflight.set(0);
            result.aborted = true;
            break;
        }
        deferred.clear();  // fully applied by the pass

        // ---- Stage 3: resolve + commit, serial block order -----------------
        // Walks each block's inputs in order, interleaving the parallel
        // pass's EV verdicts with UV (against the pending-spend overlay),
        // maturity and value rules — exactly the serial validator's
        // resolution order, so the first failure is the serial one.
        stall_watch.restart();
        DeferredSpends fresh;                          // spends of blocks committed below
        std::unordered_set<std::uint64_t> overlay_spent;  // this window's committed spends
        bool window_failed = false;
        bool aborted_mid_window = false;
        for (std::size_t b = 0; b < accepted && !window_failed; ++b) {
            if (cancel_.cancelled()) {
                aborted_mid_window = true;
                break;
            }
            const EbvBlock& block = window[b];
            const std::uint32_t height = window_base + static_cast<std::uint32_t>(b);
            const std::size_t jobs_in_block =
                (b + 1 < accepted ? job_begin[b + 1] : jobs.size()) - job_begin[b];

            const auto fail = [&](EbvError error, std::size_t t, std::size_t i,
                                  script::ScriptError script = script::ScriptError::kOk) {
                result.failure = PipelineFailure{
                    batch_index + b, height, EbvValidationFailure{error, t, i, script}};
                window_failed = true;
            };

            std::unordered_set<std::uint64_t> spent_in_block;
            chain::Amount total_fees = 0;
            std::size_t j = job_begin[b];
            for (std::size_t t = 1; t < block.txs.size() && !window_failed; ++t) {
                const EbvTransaction& tx = block.txs[t];
                chain::Amount value_in = 0;
                for (std::size_t i = 0; i < tx.inputs.size(); ++i, ++j) {
                    const EbvInput& in = tx.inputs[i];
                    if (verdicts[j].ev != EvStatus::kOk) {
                        fail(core::to_ebv_error(verdicts[j].ev), t, i);
                        break;
                    }
                    // UV: the bit at the authenticated absolute position
                    // must still be 1 — in the committed set or, for an
                    // output spent earlier inside this window, not in the
                    // pending-spend overlay.
                    const std::uint32_t position = in.absolute_position();
                    const std::uint64_t key = spent_key(in.height, position);
                    if (!spent_in_block.insert(key).second) {
                        fail(EbvError::kDoubleSpendInBlock, t, i);
                        break;
                    }
                    if (overlay_spent.count(key) != 0 ||
                        !status_.check_unspent(in.height, position)) {
                        fail(EbvError::kUnspentFailed, t, i);
                        break;
                    }
                    if (in.els.is_coinbase() &&
                        height < in.height + params_.coinbase_maturity) {
                        fail(EbvError::kImmatureCoinbaseSpend, t, i);
                        break;
                    }
                    // Mirrors the serial validator's guarded accumulation
                    // exactly (failure-tuple parity).
                    if (!chain::add_money(value_in, in.els.outputs[in.out_index].value)) {
                        fail(EbvError::kValueOutOfRange, t, i);
                        break;
                    }
                }
                if (window_failed) break;
                const chain::Amount value_out = tx.total_output_value();
                if (value_in < value_out) {
                    fail(EbvError::kNegativeFee, t, 0);
                    break;
                }
                if (!chain::add_money(total_fees, value_in - value_out)) {
                    fail(EbvError::kValueOutOfRange, t, 0);
                    break;
                }
            }
            if (window_failed) break;

            const chain::Amount allowed = params_.subsidy_at(height) + total_fees;
            if (block.txs[0].total_output_value() > allowed) {
                fail(EbvError::kCoinbaseValueTooHigh, 0, 0);
                break;
            }

            // SV verdicts resolve last, as their own phase (serial parity).
            if (verify_scripts_) {
                const std::size_t sj = sv_min[b].value.load(std::memory_order_relaxed);
                if (sj < jobs_in_block) {
                    const ProofJob& sv_job = jobs[job_begin[b] + sj];
                    fail(EbvError::kScriptFailure, sv_job.tx_index, sv_job.input_index,
                         verdicts[job_begin[b] + sj].script);
                    break;
                }
            }

            // Commit: install header + status vector now; spent bits join
            // the next window's parallel pass via `fresh`.
            util::Stopwatch commit_watch;
            const bool linked = headers_.append(block.header);
            EBV_ENSURES(linked);
            status_.insert_block(height, static_cast<std::uint32_t>(block.output_count()));
            std::uint64_t proof_bytes = 0;
            for (std::size_t t = 1; t < block.txs.size(); ++t) {
                for (const EbvInput& in : block.txs[t].inputs) {
                    const std::uint32_t position = in.absolute_position();
                    fresh.add(in.height, position);
                    overlay_spent.insert(spent_key(in.height, position));
                    proof_bytes += in.mbr.byte_size() + in.els.serialized_size();
                }
            }
            on_commit(block, height);
            result.timings.update.wall_ns += commit_watch.elapsed_ns();

            if (tracing) {
                // The block's causal interval: from the start of the parallel
                // pass that validated its inputs to its commit here. Recorded
                // with the pre-allocated id its worker spans parented under.
                obs::Span block_span;
                block_span.name = "ebv.ibd.block";
                block_span.category = "block";
                block_span.trace_id = trace_id;
                block_span.span_id = block_span_ids[b];
                block_span.parent_id = window_span_id;
                block_span.start_ns = pass_start_ns;
                block_span.wall_ns = obs::Tracer::now_ns() - pass_start_ns;
                block_span.value = height;
                obs::Tracer::global().record(std::move(block_span));
            }

            ++result.connected;
            result.timings.inputs += block.input_count();
            result.timings.outputs += block.output_count();
            m.connects.inc();
            m.txs.inc(block.txs.size());
            m.inputs.inc(block.input_count());
            m.outputs.inc(block.output_count());
            m.proof_bytes.inc(proof_bytes);
        }

        if (aborted_mid_window) {
            // Cancelled between blocks (e.g. from the commit hook): blocks
            // already committed this window keep their spends applied; the
            // rest of the window is discarded unvalidated.
            deferred = std::move(fresh);
            for (auto& flag : shard_done) flag.store(false, std::memory_order_relaxed);
            flush_deferred_serial();
            m.blocks_inflight.set(0);
            result.aborted = true;
            break;
        }

        // A structural failure is reported only when every block before it
        // committed — otherwise the earlier resolution failure won, exactly
        // as in the serial loop.
        if (!window_failed && structural_failure.has_value()) {
            result.failure = PipelineFailure{batch_index + accepted,
                                             window_base + static_cast<std::uint32_t>(accepted),
                                             *structural_failure};
            window_failed = true;
        }

        const std::int64_t stall_after_pass = stall_watch.elapsed_ns();
        m.stall_ns.observe(static_cast<std::uint64_t>(stall_before_pass + stall_after_pass));
        result.timings.other.wall_ns += stall_before_pass;
        result.timings.uv.wall_ns += stall_after_pass;
        m.blocks_inflight.set(0);

        if (window_failed) {
            m.rejects.inc();
            deferred = std::move(fresh);
            for (auto& flag : shard_done) flag.store(false, std::memory_order_relaxed);
            flush_deferred_serial();
            break;
        }

        deferred = std::move(fresh);
        for (auto& flag : shard_done) flag.store(false, std::memory_order_relaxed);
        batch_index += window_len;
    }

    // Final flush: the last window's spends haven't ridden a pass yet.
    if (!deferred.empty()) {
        util::Stopwatch watch;
        std::vector<BitVectorSet::SpentRecord> all;
        all.reserve(deferred.total);
        for (const auto& shard : deferred.by_shard)
            all.insert(all.end(), shard.begin(), shard.end());
        status_.spend_batch(all, pool_);
        deferred.clear();
        const auto ns = watch.elapsed_ns();
        result.timings.update.wall_ns += ns;
        m.commit_ns.observe(static_cast<std::uint64_t>(ns));
    }

    result.wall_ns = static_cast<std::uint64_t>(run_watch.elapsed_ns());
    return result;
}

}  // namespace ebv::ibd
